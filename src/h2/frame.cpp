#include "h2/frame.hpp"

#include <array>

namespace hsim::h2 {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint32_t read_u32(const buf::Chain& c, std::size_t pos) {
  std::array<std::uint8_t, 4> b{};
  c.copy_to(pos, b);
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

void put_entry(std::vector<std::uint8_t>& out, std::string_view name,
               std::string_view value) {
  put_u16(out, static_cast<std::uint16_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
  put_u16(out, static_cast<std::uint16_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

/// Decodes one length-prefixed block into name/value pairs; nullopt on a
/// truncated entry.
std::optional<std::vector<std::pair<std::string, std::string>>> decode_entries(
    const buf::Chain& block) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  const std::size_t n = block.size();
  while (pos < n) {
    if (pos + 2 > n) return std::nullopt;
    std::array<std::uint8_t, 2> len{};
    block.copy_to(pos, len);
    std::size_t name_len = (static_cast<std::size_t>(len[0]) << 8) | len[1];
    pos += 2;
    if (pos + name_len > n) return std::nullopt;
    std::string name = block.to_string(pos, name_len);
    pos += name_len;
    if (pos + 2 > n) return std::nullopt;
    block.copy_to(pos, len);
    std::size_t val_len = (static_cast<std::size_t>(len[0]) << 8) | len[1];
    pos += 2;
    if (pos + val_len > n) return std::nullopt;
    std::string value = block.to_string(pos, val_len);
    pos += val_len;
    out.emplace_back(std::move(name), std::move(value));
  }
  return out;
}

}  // namespace

std::string_view to_string(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPushPromise: return "PUSH_PROMISE";
    case FrameType::kGoAway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
  }
  return "?";
}

bool is_known_frame_type(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kData:
    case FrameType::kHeaders:
    case FrameType::kRstStream:
    case FrameType::kSettings:
    case FrameType::kPushPromise:
    case FrameType::kGoAway:
    case FrameType::kWindowUpdate:
      return true;
  }
  return false;
}

std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kNoError: return "NO_ERROR";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kInternalError: return "INTERNAL_ERROR";
    case ErrorCode::kFlowControlError: return "FLOW_CONTROL_ERROR";
    case ErrorCode::kFrameSizeError: return "FRAME_SIZE_ERROR";
    case ErrorCode::kRefusedStream: return "REFUSED_STREAM";
    case ErrorCode::kCancel: return "CANCEL";
  }
  return "?";
}

buf::Chain encode_frame(const Frame& frame) {
  std::array<std::uint8_t, kFrameHeaderSize> hdr{};
  const std::size_t len = frame.payload.size();
  hdr[0] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
  hdr[1] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
  hdr[2] = static_cast<std::uint8_t>(len & 0xFF);
  hdr[3] = static_cast<std::uint8_t>(frame.type);
  hdr[4] = frame.flags;
  hdr[5] = static_cast<std::uint8_t>((frame.stream_id >> 24) & 0x7F);
  hdr[6] = static_cast<std::uint8_t>((frame.stream_id >> 16) & 0xFF);
  hdr[7] = static_cast<std::uint8_t>((frame.stream_id >> 8) & 0xFF);
  hdr[8] = static_cast<std::uint8_t>(frame.stream_id & 0xFF);
  buf::Chain out;
  out.append_copy(std::span<const std::uint8_t>(hdr.data(), hdr.size()));
  out.append(frame.payload);
  return out;
}

buf::Chain encode_settings_payload(const std::vector<Setting>& settings) {
  std::vector<std::uint8_t> out;
  out.reserve(settings.size() * 6);
  for (const Setting& s : settings) {
    put_u16(out, s.id);
    put_u32(out, s.value);
  }
  return buf::Chain(buf::Bytes(std::move(out)));
}

std::optional<std::vector<Setting>> parse_settings_payload(
    const buf::Chain& payload) {
  if (payload.size() % 6 != 0) return std::nullopt;
  std::vector<Setting> out;
  for (std::size_t pos = 0; pos < payload.size(); pos += 6) {
    std::array<std::uint8_t, 2> id{};
    payload.copy_to(pos, id);
    out.push_back(Setting{
        static_cast<std::uint16_t>((static_cast<std::uint16_t>(id[0]) << 8) |
                                   id[1]),
        read_u32(payload, pos + 2)});
  }
  return out;
}

buf::Chain encode_window_update_payload(std::uint32_t increment) {
  std::vector<std::uint8_t> out;
  put_u32(out, increment & 0x7FFFFFFF);
  return buf::Chain(buf::Bytes(std::move(out)));
}

std::optional<std::uint32_t> parse_window_update_payload(
    const buf::Chain& payload) {
  if (payload.size() != 4) return std::nullopt;
  return read_u32(payload, 0) & 0x7FFFFFFF;
}

buf::Chain encode_rst_payload(ErrorCode code) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(code));
  return buf::Chain(buf::Bytes(std::move(out)));
}

std::optional<std::uint32_t> parse_rst_payload(const buf::Chain& payload) {
  if (payload.size() != 4) return std::nullopt;
  return read_u32(payload, 0);
}

buf::Chain encode_goaway_payload(const GoAway& g) {
  std::vector<std::uint8_t> out;
  put_u32(out, g.last_stream_id & 0x7FFFFFFF);
  put_u32(out, g.error_code);
  return buf::Chain(buf::Bytes(std::move(out)));
}

std::optional<GoAway> parse_goaway_payload(const buf::Chain& payload) {
  if (payload.size() < 8) return std::nullopt;
  GoAway g;
  g.last_stream_id = read_u32(payload, 0) & 0x7FFFFFFF;
  g.error_code = read_u32(payload, 4);
  return g;
}

buf::Chain encode_request_block(const http::Request& req) {
  std::vector<std::uint8_t> out;
  put_entry(out, ":method", http::to_string(req.method));
  put_entry(out, ":path", req.target);
  for (const auto& [name, value] : req.headers.items())
    put_entry(out, name, value);
  return buf::Chain(buf::Bytes(std::move(out)));
}

buf::Chain encode_response_block(const http::Response& res) {
  std::vector<std::uint8_t> out;
  put_entry(out, ":status", std::to_string(res.status));
  for (const auto& [name, value] : res.headers.items())
    put_entry(out, name, value);
  return buf::Chain(buf::Bytes(std::move(out)));
}

std::optional<http::Request> decode_request_block(const buf::Chain& block) {
  auto entries = decode_entries(block);
  if (!entries) return std::nullopt;
  http::Request req;
  req.version = http::Version::kHttp11;
  bool saw_method = false, saw_path = false;
  for (auto& [name, value] : *entries) {
    if (name == ":method") {
      auto m = http::parse_method(value);
      if (!m) return std::nullopt;
      req.method = *m;
      saw_method = true;
    } else if (name == ":path") {
      req.target = value;
      saw_path = true;
    } else if (!name.empty() && name[0] == ':') {
      return std::nullopt;  // unknown pseudo-header
    } else {
      req.headers.add(std::move(name), std::move(value));
    }
  }
  if (!saw_method || !saw_path) return std::nullopt;
  return req;
}

std::optional<http::Response> decode_response_block(const buf::Chain& block) {
  auto entries = decode_entries(block);
  if (!entries) return std::nullopt;
  http::Response res;
  res.version = http::Version::kHttp11;
  bool saw_status = false;
  for (auto& [name, value] : *entries) {
    if (name == ":status") {
      int status = 0;
      for (char ch : value) {
        if (ch < '0' || ch > '9') return std::nullopt;
        status = status * 10 + (ch - '0');
      }
      if (status < 100 || status > 599) return std::nullopt;
      res.status = status;
      res.reason = std::string(http::default_reason(status));
      saw_status = true;
    } else if (!name.empty() && name[0] == ':') {
      return std::nullopt;
    } else {
      res.headers.add(std::move(name), std::move(value));
    }
  }
  if (!saw_status) return std::nullopt;
  return res;
}

buf::Chain encode_push_promise_payload(std::uint32_t promised_id,
                                       const http::Request& req) {
  std::vector<std::uint8_t> out;
  put_u32(out, promised_id & 0x7FFFFFFF);
  buf::Chain payload(buf::Bytes(std::move(out)));
  payload.append(encode_request_block(req));
  return payload;
}

std::optional<PushPromise> parse_push_promise_payload(
    const buf::Chain& payload) {
  if (payload.size() < 4) return std::nullopt;
  PushPromise p;
  p.promised_id = read_u32(payload, 0) & 0x7FFFFFFF;
  auto req = decode_request_block(payload.slice(4));
  if (!req) return std::nullopt;
  p.request = std::move(*req);
  return p;
}

void FrameDecoder::fail(ErrorCode code, std::string message) {
  error_ = DecodeError{code, std::move(message)};
  pending_.reset();
  input_.clear();
}

std::optional<Frame> FrameDecoder::next() {
  if (error_) return std::nullopt;
  if (!pending_) {
    if (input_.size() < kFrameHeaderSize) return std::nullopt;
    std::array<std::uint8_t, kFrameHeaderSize> hdr{};
    input_.copy_to(0, hdr);
    const std::size_t length = (static_cast<std::size_t>(hdr[0]) << 16) |
                               (static_cast<std::size_t>(hdr[1]) << 8) |
                               hdr[2];
    const std::uint8_t raw_type = hdr[3];
    const std::uint8_t flags = hdr[4];
    const std::uint32_t stream_id =
        ((static_cast<std::uint32_t>(hdr[5]) & 0x7F) << 24) |
        (static_cast<std::uint32_t>(hdr[6]) << 16) |
        (static_cast<std::uint32_t>(hdr[7]) << 8) |
        static_cast<std::uint32_t>(hdr[8]);
    if (!is_known_frame_type(raw_type)) {
      fail(ErrorCode::kProtocolError,
           "unknown frame type " + std::to_string(raw_type));
      return std::nullopt;
    }
    const FrameType type = static_cast<FrameType>(raw_type);
    if (length > max_frame_size_) {
      fail(ErrorCode::kFrameSizeError,
           std::string(to_string(type)) + " length " + std::to_string(length) +
               " exceeds max frame size " + std::to_string(max_frame_size_));
      return std::nullopt;
    }
    // Scope checks: stream frames must not land on the connection stream and
    // connection frames must not land on a stream.
    switch (type) {
      case FrameType::kData:
      case FrameType::kHeaders:
      case FrameType::kRstStream:
      case FrameType::kPushPromise:
        if (stream_id == 0) {
          fail(ErrorCode::kProtocolError,
               std::string(to_string(type)) + " on stream 0");
          return std::nullopt;
        }
        break;
      case FrameType::kSettings:
      case FrameType::kGoAway:
        if (stream_id != 0) {
          fail(ErrorCode::kProtocolError,
               std::string(to_string(type)) + " on stream " +
                   std::to_string(stream_id));
          return std::nullopt;
        }
        break;
      case FrameType::kWindowUpdate:
        break;  // valid on both scopes
    }
    // Fixed-size payload checks are attributable from the header alone.
    if (type == FrameType::kRstStream && length != 4) {
      fail(ErrorCode::kFrameSizeError, "RST_STREAM length != 4");
      return std::nullopt;
    }
    if (type == FrameType::kWindowUpdate && length != 4) {
      fail(ErrorCode::kFrameSizeError, "WINDOW_UPDATE length != 4");
      return std::nullopt;
    }
    if (type == FrameType::kSettings && length % 6 != 0) {
      fail(ErrorCode::kFrameSizeError, "SETTINGS length not a multiple of 6");
      return std::nullopt;
    }
    if (type == FrameType::kGoAway && length < 8) {
      fail(ErrorCode::kFrameSizeError, "GOAWAY length < 8");
      return std::nullopt;
    }
    if (type == FrameType::kPushPromise && length < 4) {
      fail(ErrorCode::kFrameSizeError, "PUSH_PROMISE length < 4");
      return std::nullopt;
    }
    Frame f;
    f.type = type;
    f.flags = flags;
    f.stream_id = stream_id;
    pending_ = std::move(f);
    pending_length_ = length;
    input_.pop_front(kFrameHeaderSize);
  }
  if (input_.size() < pending_length_) return std::nullopt;
  Frame out = std::move(*pending_);
  pending_.reset();
  out.payload = input_.split_front(pending_length_);
  return out;
}

}  // namespace hsim::h2
