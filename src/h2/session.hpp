// HTTP/2-style multiplexed session: streams, flow control, a deterministic
// priority scheduler, and server push over one byte-stream transport.
//
// A `Session` is transport-agnostic: it consumes arriving bytes via
// `receive()` and emits outgoing bytes through a caller-supplied `WriteFn`
// sink. The server wires the sink into its existing `out_unsent` pump (so
// fault injection — stall-after-bytes, premature close — applies to h2
// connections unchanged), the client into its lane output buffer, and the
// tests into in-memory pipes.
//
// Determinism rules (pinned by golden traces and the flow-control tests):
//   - The DATA scheduler picks, among streams with queued bytes and open
//     stream + connection windows, the highest weight first; within a weight
//     it round-robins by stream id (smallest id strictly greater than the
//     last-served id, wrapping). One frame of at most the peer's
//     MAX_FRAME_SIZE is sent per pick.
//   - Streams live in an id-ordered map; every callback fires in frame
//     arrival order. No hashing, no pointer-order iteration anywhere.
//   - Window replenishment (auto WINDOW_UPDATE) triggers at exactly half the
//     initial window, per stream and per connection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "buf/bytes.hpp"
#include "h2/frame.hpp"
#include "http/message.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace hsim::h2 {

struct SessionConfig {
  bool is_server = false;
  /// Our receive window per stream, advertised via SETTINGS; also raises the
  /// connection window above the 65535 default via an immediate
  /// WINDOW_UPDATE when larger.
  std::uint32_t initial_window = kDefaultInitialWindow;
  std::uint32_t max_frame_size = kDefaultMaxFrameSize;
  std::uint32_t max_concurrent_streams = kDefaultMaxConcurrentStreams;
  /// Whether we accept PUSH_PROMISE (clients) / intend to push (servers).
  /// Advertised to the peer in SETTINGS ENABLE_PUSH.
  bool enable_push = true;
  /// Replenish stream/connection receive windows automatically once half the
  /// initial window has been consumed. Tests disable this to drive windows
  /// by hand.
  bool auto_window_update = true;
};

/// Per-stream lifecycle record surfaced through `timelines()` — when a
/// stream opened, when its HEADERS went by, first DATA byte, close, and how
/// often it stalled on flow control.
struct StreamTimeline {
  std::uint32_t id = 0;
  bool push = false;
  sim::Time opened = 0;
  sim::Time headers = 0;
  sim::Time first_data = 0;
  sim::Time closed = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t flow_stalls = 0;
  bool reset = false;
};

/// Plain-value counters mirrored into `h2.*` registry metrics when a
/// registry is installed (binding happens in the Session constructor, so
/// registry dumps of non-h2 runs carry no h2 names).
struct SessionStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t data_bytes_sent = 0;
  std::uint64_t data_bytes_received = 0;
  std::uint64_t flow_stalls = 0;
  std::uint64_t streams_opened = 0;
  std::uint64_t pushes_promised = 0;
  std::uint64_t pushes_accepted = 0;
  std::uint64_t pushes_reset = 0;
  std::uint64_t goaways_sent = 0;
  std::uint64_t goaways_received = 0;
  std::uint64_t conn_errors = 0;
};

class Session {
 public:
  using WriteFn = std::function<void(buf::Chain&&)>;

  /// A client session emits the connection preface + SETTINGS immediately;
  /// a server session emits its SETTINGS (the owner consumes the preface
  /// before constructing the session).
  Session(sim::EventQueue& clock, SessionConfig config, WriteFn write);

  // ---- Input ----------------------------------------------------------

  /// Feeds arriving transport bytes (any segmentation). Dispatches
  /// callbacks synchronously in frame order.
  void receive(buf::Chain data);

  // ---- Client API -----------------------------------------------------

  /// Opens an odd-id stream carrying `req` (HEADERS + END_STREAM; the
  /// simulated workloads carry no request bodies). Returns the stream id.
  std::uint32_t submit_request(const http::Request& req,
                               std::uint8_t weight = 16);

  // ---- Server API -----------------------------------------------------

  /// Sends response HEADERS on `stream_id` and queues the body for the
  /// scheduler. END_STREAM rides the HEADERS frame when there is no body.
  void submit_response(std::uint32_t stream_id, const http::Response& res);

  /// Reserves an even push stream announced on `parent_stream`. Returns the
  /// promised id, or nullopt when the peer disabled push or a GOAWAY is in
  /// flight (callers fall back to letting the client request normally).
  std::optional<std::uint32_t> promise_push(std::uint32_t parent_stream,
                                            const http::Request& req,
                                            std::uint8_t weight = 8);
  void push_response(std::uint32_t promised_id, const http::Response& res);

  // ---- Both sides -----------------------------------------------------

  void reset_stream(std::uint32_t id, ErrorCode code);
  /// Sends GOAWAY carrying the highest peer stream id processed. Idempotent.
  void send_goaway(ErrorCode code);

  bool goaway_sent() const { return goaway_sent_; }
  bool goaway_received() const { return goaway_received_; }
  /// last_stream_id from the peer's GOAWAY (only meaningful after
  /// goaway_received()): streams above it were never processed and are safe
  /// to retry elsewhere.
  std::uint32_t peer_last_stream_id() const { return peer_goaway_.last_stream_id; }

  bool failed() const { return error_.has_value(); }
  const std::optional<DecodeError>& error() const { return error_; }
  bool peer_push_enabled() const { return peer_enable_push_; }

  // ---- Callbacks ------------------------------------------------------

  /// Server: complete request arrived on a stream.
  std::function<void(std::uint32_t, http::Request)> on_request;
  /// Client: complete response (headers + full body) on a stream we opened.
  std::function<void(std::uint32_t, http::Response)> on_response;
  /// Client: body bytes arrived on a stream (incremental; response so far
  /// is visible through stream_partial()).
  std::function<void(std::uint32_t, std::size_t)> on_stream_data;
  /// Client: peer promised a push. Return true to accept; false sends
  /// RST_STREAM(CANCEL) on the promised stream.
  std::function<bool(std::uint32_t, const http::Request&)> on_push_promise;
  /// Client: complete response on an accepted push stream.
  std::function<void(std::uint32_t, http::Response)> on_push_response;
  /// Peer reset one of our streams.
  std::function<void(std::uint32_t, ErrorCode)> on_stream_reset;
  std::function<void(const GoAway&)> on_goaway;
  /// Connection-fatal error (decode failure or flow-control violation). A
  /// GOAWAY with the matching code has already been emitted.
  std::function<void(const DecodeError&)> on_connection_error;

  // ---- Introspection --------------------------------------------------

  /// Response accumulated so far on a client-side stream (headers must have
  /// arrived); nullptr otherwise. Valid until the next receive().
  const http::Response* stream_partial(std::uint32_t id) const;
  /// True once `id` is fully closed (both directions or reset).
  bool stream_closed(std::uint32_t id) const;
  bool stream_was_reset(std::uint32_t id) const;

  const SessionStats& stats() const { return stats_; }
  /// Timeline snapshot in stream-id order (open streams included).
  std::vector<StreamTimeline> timelines() const;

  std::int64_t conn_send_window() const { return conn_send_window_; }
  std::int64_t conn_recv_window() const { return conn_recv_window_; }
  std::optional<std::int64_t> stream_send_window(std::uint32_t id) const;
  std::size_t open_stream_count() const;
  /// Bytes queued behind flow control across all streams.
  std::size_t queued_send_bytes() const;

 private:
  struct Stream {
    std::uint32_t id = 0;
    std::uint8_t weight = 16;
    bool is_push = false;
    bool local_closed = false;
    bool remote_closed = false;
    bool reset = false;
    std::int64_t send_window = 0;
    std::int64_t recv_window = 0;
    std::uint32_t recv_consumed = 0;
    bool headers_received = false;
    http::Request request;    // server side accumulation
    http::Response response;  // client side accumulation
    buf::Chain send_queue;
    bool end_after_send = false;
    bool stalled = false;
    StreamTimeline tl;
  };

  struct Metrics {
    obs::CounterHandle frames_sent[16];
    obs::CounterHandle frames_received[16];
    obs::CounterHandle data_bytes_sent;
    obs::CounterHandle data_bytes_received;
    obs::CounterHandle flow_stalls;
    obs::CounterHandle streams_opened;
    obs::CounterHandle pushes_promised;
    obs::CounterHandle pushes_accepted;
    obs::CounterHandle pushes_reset;
    obs::CounterHandle goaways_sent;
    obs::CounterHandle goaways_received;
    obs::CounterHandle conn_errors;
    static Metrics bind();
  };

  Stream& open_stream(std::uint32_t id, bool is_push, std::uint8_t weight);
  Stream* find(std::uint32_t id);
  const Stream* find(std::uint32_t id) const;
  void emit(Frame frame);
  void pump_streams();
  Stream* pick_next_stream();
  void note_stalls();
  void maybe_close(Stream& s);
  void connection_error(ErrorCode code, std::string message);
  void account_receive(Stream* s, std::size_t n);

  void handle_settings(const Frame& f);
  void handle_window_update(const Frame& f);
  void handle_data(Frame& f);
  void handle_headers(const Frame& f);
  void handle_push_promise(const Frame& f);
  void handle_rst(const Frame& f);
  void handle_goaway(const Frame& f);

  sim::EventQueue& clock_;
  SessionConfig config_;
  WriteFn write_;
  FrameDecoder decoder_;
  Metrics metrics_;
  SessionStats stats_;

  std::map<std::uint32_t, Stream> streams_;
  // Round-robin cursor per weight: the id served last at that weight.
  std::map<std::uint8_t, std::uint32_t> rr_last_;

  std::uint32_t next_local_id_;       // odd for clients, even for push
  std::uint32_t highest_peer_id_ = 0;
  std::uint32_t last_processed_peer_id_ = 0;

  std::int64_t conn_send_window_ = kDefaultInitialWindow;
  std::int64_t conn_recv_window_ = kDefaultInitialWindow;
  std::uint32_t conn_recv_consumed_ = 0;

  // Peer settings (defaults until their SETTINGS arrives).
  std::int64_t peer_initial_window_ = kDefaultInitialWindow;
  std::uint32_t peer_max_frame_size_ = kDefaultMaxFrameSize;
  std::uint32_t peer_max_concurrent_ = kDefaultMaxConcurrentStreams;
  bool peer_enable_push_ = true;

  bool goaway_sent_ = false;
  bool goaway_received_ = false;
  GoAway peer_goaway_;
  std::optional<DecodeError> error_;
  bool in_receive_ = false;
};

}  // namespace hsim::h2
