// HTTP/2-style binary framing layer: frame model, codec, and an incremental
// chain-cursor decoder.
//
// Frames follow the RFC 7540 shape — a 9-byte header (24-bit payload length,
// 8-bit type, 8-bit flags, 31-bit stream id) followed by the payload — but
// the header *block* coding is a simple length-prefixed name/value list with
// `:method` / `:path` / `:status` pseudo-headers instead of HPACK: the
// simulator measures transport behaviour (multiplexing, flow control, push),
// not compression ratios, and an uncompressed block keeps every byte
// attributable.
//
// Payloads ride `buf::Chain` slices end to end: encoding a DATA frame appends
// a 9-byte header copy plus shared slices of the body, and `FrameDecoder`
// walks arriving chains without flattening them, so arbitrary TCP
// segmentation (1-byte feeds included) is invisible to the frame stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "buf/bytes.hpp"
#include "http/message.hpp"

namespace hsim::h2 {

inline constexpr std::size_t kFrameHeaderSize = 9;

/// 24-byte client connection preface sent before the first frame. The server
/// classifies an incoming connection as h2 iff the bytes match exactly
/// ("PRI" diverges from every HTTP/1.x method at the second byte).
inline constexpr std::string_view kClientPreface =
    "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

inline constexpr std::uint32_t kDefaultMaxFrameSize = 16384;
inline constexpr std::uint32_t kDefaultInitialWindow = 65535;
inline constexpr std::uint32_t kDefaultMaxConcurrentStreams = 100;
/// Flow-control windows are 31-bit; an update pushing a window past this is
/// a connection error (kFlowControlError).
inline constexpr std::int64_t kMaxWindow = 0x7FFFFFFF;

enum class FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPushPromise = 0x5,
  kGoAway = 0x7,
  kWindowUpdate = 0x8,
};
std::string_view to_string(FrameType t);
bool is_known_frame_type(std::uint8_t t);

// Frame flags (per-type meaning, as in RFC 7540).
inline constexpr std::uint8_t kFlagEndStream = 0x1;   // DATA, HEADERS
inline constexpr std::uint8_t kFlagAck = 0x1;         // SETTINGS
inline constexpr std::uint8_t kFlagEndHeaders = 0x4;  // HEADERS, PUSH_PROMISE

enum class ErrorCode : std::uint32_t {
  kNoError = 0x0,
  kProtocolError = 0x1,
  kInternalError = 0x2,
  kFlowControlError = 0x3,
  kFrameSizeError = 0x6,
  kRefusedStream = 0x7,
  kCancel = 0x8,
};
std::string_view to_string(ErrorCode c);

// Settings identifiers carried in SETTINGS payloads (6-byte id/value pairs).
inline constexpr std::uint16_t kSettingsEnablePush = 0x2;
inline constexpr std::uint16_t kSettingsMaxConcurrentStreams = 0x3;
inline constexpr std::uint16_t kSettingsInitialWindowSize = 0x4;
inline constexpr std::uint16_t kSettingsMaxFrameSize = 0x5;

struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;  // 31-bit; 0 = connection scope
  buf::Chain payload;

  bool has_flag(std::uint8_t f) const { return (flags & f) != 0; }
};

/// Serializes header + payload. The payload chain is shared, not copied.
buf::Chain encode_frame(const Frame& frame);

// ---- Typed payload helpers ------------------------------------------------

struct Setting {
  std::uint16_t id = 0;
  std::uint32_t value = 0;
};

buf::Chain encode_settings_payload(const std::vector<Setting>& settings);
/// nullopt on a length not divisible by 6.
std::optional<std::vector<Setting>> parse_settings_payload(
    const buf::Chain& payload);

buf::Chain encode_window_update_payload(std::uint32_t increment);
/// nullopt on wrong length; a zero increment is returned and rejected at the
/// session layer (stream-scoped error attribution lives there).
std::optional<std::uint32_t> parse_window_update_payload(
    const buf::Chain& payload);

buf::Chain encode_rst_payload(ErrorCode code);
std::optional<std::uint32_t> parse_rst_payload(const buf::Chain& payload);

struct GoAway {
  std::uint32_t last_stream_id = 0;
  std::uint32_t error_code = 0;
};
buf::Chain encode_goaway_payload(const GoAway& g);
std::optional<GoAway> parse_goaway_payload(const buf::Chain& payload);

// ---- Header block coding --------------------------------------------------
//
// A block is a sequence of [u16 name_len][name][u16 value_len][value]
// entries. Requests lead with `:method` and `:path`, responses with
// `:status`; remaining entries are the ordinary HTTP headers in order.

buf::Chain encode_request_block(const http::Request& req);
buf::Chain encode_response_block(const http::Response& res);

/// nullopt on truncated entries or a missing pseudo-header.
std::optional<http::Request> decode_request_block(const buf::Chain& block);
/// Decoded response carries status/reason/headers; the body arrives in DATA
/// frames and is attached by the session.
std::optional<http::Response> decode_response_block(const buf::Chain& block);

/// PUSH_PROMISE payload: [u32 promised stream id][request header block].
buf::Chain encode_push_promise_payload(std::uint32_t promised_id,
                                       const http::Request& req);
struct PushPromise {
  std::uint32_t promised_id = 0;
  http::Request request;
};
std::optional<PushPromise> parse_push_promise_payload(
    const buf::Chain& payload);

// ---- Incremental decoder --------------------------------------------------

/// A connection-fatal decode failure with attribution. Everything the
/// decoder rejects maps onto an ErrorCode a session turns into GOAWAY.
struct DecodeError {
  ErrorCode code = ErrorCode::kProtocolError;
  std::string message;
};

/// Incremental frame decoder over a chain cursor. Feed arriving bytes in any
/// segmentation; `next()` yields complete frames with payloads sliced
/// zero-copy out of the input chain. After an error, `next()` returns
/// nullopt forever and `error()` describes the failure.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_size = kDefaultMaxFrameSize)
      : max_frame_size_(max_frame_size) {}

  void feed(buf::Chain&& data) { input_.append(std::move(data)); }
  void feed(const buf::Chain& data) { input_.append(data); }

  std::optional<Frame> next();

  bool failed() const { return error_.has_value(); }
  const std::optional<DecodeError>& error() const { return error_; }

  /// Bytes buffered but not yet consumed as frames (diagnostics).
  std::size_t buffered() const { return input_.size(); }

 private:
  void fail(ErrorCode code, std::string message);

  buf::Chain input_;
  std::uint32_t max_frame_size_;
  std::optional<DecodeError> error_;
  // Parsed header of the frame whose payload we are still waiting for.
  std::optional<Frame> pending_;
  std::size_t pending_length_ = 0;
};

}  // namespace hsim::h2
