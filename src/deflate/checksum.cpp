#include "deflate/checksum.hpp"

#include <array>

namespace hsim::deflate {

std::uint32_t adler32(std::span<const std::uint8_t> data,
                      std::uint32_t adler) {
  constexpr std::uint32_t kMod = 65521;
  std::uint32_t a = adler & 0xFFFF;
  std::uint32_t b = (adler >> 16) & 0xFFFF;
  std::size_t i = 0;
  while (i < data.size()) {
    // 5552 is the largest n such that 255*n*(n+1)/2 + (n+1)*(kMod-1) fits in
    // 32 bits, allowing the modulo to be deferred (RFC 1950 reference impl).
    std::size_t chunk = std::min<std::size_t>(5552, data.size() - i);
    for (std::size_t j = 0; j < chunk; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kMod;
    b %= kMod;
    i += chunk;
  }
  return (b << 16) | a;
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace hsim::deflate
