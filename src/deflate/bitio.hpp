// LSB-first bit streams as used by DEFLATE (RFC 1951 §3.1.1).
//
// Data elements other than Huffman codes are packed starting from the least
// significant bit of each byte; Huffman codes are packed most-significant
// code bit first, which callers achieve by reversing the code bits before
// calling write_bits (see Huffman::encode_entry).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hsim::deflate {

class BitWriter {
 public:
  /// Appends `count` bits of `value` (LSB first). count <= 32.
  void write_bits(std::uint32_t value, unsigned count) {
    acc_ |= static_cast<std::uint64_t>(value & ((1ull << count) - 1)) << used_;
    used_ += count;
    while (used_ >= 8) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      used_ -= 8;
    }
  }

  /// Pads with zero bits to the next byte boundary.
  void align_to_byte() {
    if (used_ > 0) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      used_ = 0;
    }
  }

  /// Appends whole bytes (caller must be byte-aligned, e.g. stored blocks).
  void write_bytes(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  std::vector<std::uint8_t> take() {
    align_to_byte();
    return std::move(bytes_);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t bit_count() const { return bytes_.size() * 8 + used_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned used_ = 0;
};

/// Reads bits LSB-first from a buffer that may grow between calls (streaming
/// inflate). Positions can be saved and restored so a decoder can roll back
/// to the last fully-decoded symbol when input runs dry mid-symbol.
class BitReader {
 public:
  struct Position {
    std::size_t byte = 0;
    unsigned bit = 0;
  };

  explicit BitReader(const std::vector<std::uint8_t>& buffer)
      : buffer_(&buffer) {}

  Position tell() const { return pos_; }
  void seek(Position p) { pos_ = p; }

  /// Bits remaining in the buffer from the current position.
  std::size_t bits_available() const {
    return (buffer_->size() - pos_.byte) * 8 - pos_.bit;
  }

  bool can_read(unsigned count) const { return bits_available() >= count; }

  /// Reads `count` bits LSB-first. Caller must ensure availability.
  std::uint32_t read_bits(unsigned count) {
    std::uint32_t value = 0;
    for (unsigned i = 0; i < count; ++i) {
      const std::uint32_t bit = ((*buffer_)[pos_.byte] >> pos_.bit) & 1u;
      value |= bit << i;
      if (++pos_.bit == 8) {
        pos_.bit = 0;
        ++pos_.byte;
      }
    }
    return value;
  }

  /// Reads a single bit. Caller must ensure availability.
  std::uint32_t read_bit() { return read_bits(1); }

  /// Skips to the next byte boundary (stored blocks).
  void align_to_byte() {
    if (pos_.bit != 0) {
      pos_.bit = 0;
      ++pos_.byte;
    }
  }

  /// Byte-aligned whole-byte read; caller must ensure availability.
  std::uint8_t read_aligned_byte() { return (*buffer_)[pos_.byte++]; }

 private:
  const std::vector<std::uint8_t>* buffer_;
  Position pos_;
};

/// Reverses the low `count` bits of `code` (Huffman codes are emitted MSB
/// first within the LSB-first stream).
inline std::uint32_t reverse_bits(std::uint32_t code, unsigned count) {
  std::uint32_t r = 0;
  for (unsigned i = 0; i < count; ++i) {
    r = (r << 1) | ((code >> i) & 1u);
  }
  return r;
}

}  // namespace hsim::deflate
