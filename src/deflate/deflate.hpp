// DEFLATE compressor (RFC 1951) and zlib framing (RFC 1950), from scratch.
//
// The compressor runs hash-chain LZ77 with optional lazy matching, splits the
// token stream into blocks, and for each block emits whichever of
// stored / fixed-Huffman / dynamic-Huffman is smallest.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hsim::deflate {

/// Compression effort 1..9 (zlib-like): controls hash chain depth and lazy
/// match evaluation. 0 stores uncompressed blocks.
struct DeflateOptions {
  int level = 6;
};

/// Raw DEFLATE stream (no zlib header/trailer).
std::vector<std::uint8_t> deflate_compress(std::span<const std::uint8_t> input,
                                           DeflateOptions options = {});

/// RFC 1950 zlib stream: 2-byte header, deflate data, Adler-32 trailer.
/// This is the format named by HTTP's "Content-Encoding: deflate".
std::vector<std::uint8_t> zlib_compress(std::span<const std::uint8_t> input,
                                        DeflateOptions options = {});

std::vector<std::uint8_t> zlib_compress(std::string_view text,
                                        DeflateOptions options = {});

/// RFC 1950 stream with a preset dictionary (FDICT set, DICTID = Adler-32 of
/// the dictionary): the LZ77 window is primed with `dictionary`, so matches
/// may reach into shared text the receiver already has. This is the paper's
/// future-work idea of "compression dictionaries optimized for HTML and CSS1
/// text", which pays off most on small documents.
std::vector<std::uint8_t> zlib_compress_with_dictionary(
    std::span<const std::uint8_t> input,
    std::span<const std::uint8_t> dictionary, DeflateOptions options = {});

/// A dictionary of common 1997 HTML/CSS phrases, usable on both ends.
std::vector<std::uint8_t> html_preset_dictionary();

}  // namespace hsim::deflate
