// Adler-32 (RFC 1950) and CRC-32 (ISO 3309, as used by PNG and gzip).
#pragma once

#include <cstdint>
#include <span>

namespace hsim::deflate {

inline constexpr std::uint32_t kAdlerInit = 1;

/// Incremental Adler-32: pass the previous value to continue a running sum.
std::uint32_t adler32(std::span<const std::uint8_t> data,
                      std::uint32_t adler = kAdlerInit);

inline constexpr std::uint32_t kCrcInit = 0;

/// Incremental CRC-32 (the polynomial used by PNG/zlib/gzip). Pass the
/// previous value to continue a running CRC.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t crc = kCrcInit);

}  // namespace hsim::deflate
