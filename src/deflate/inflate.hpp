// Streaming INFLATE (RFC 1951) with zlib framing (RFC 1950).
//
// The Inflater is incremental: feed it compressed bytes as they arrive off
// the network and it produces whatever output is decodable so far. This
// matters for the reproduction: the paper's client parses HTML out of the
// *first TCP segment* of a compressed response, which is only possible with
// a streaming decompressor.
//
// Rollback strategy: input is accumulated internally; before decoding each
// symbol group the bit position is checkpointed, and if the input runs dry
// mid-symbol the position is restored and decoding resumes on the next feed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "deflate/bitio.hpp"
#include "deflate/huffman.hpp"

namespace hsim::deflate {

class Inflater {
 public:
  enum class Status {
    kInProgress,  // more input needed
    kDone,        // stream complete, trailer verified
    kError,       // malformed stream (see error())
  };

  enum class Format { kZlib, kRaw };

  explicit Inflater(Format format = Format::kZlib) : format_(format) {}

  /// Supplies the preset dictionary used when the stream's FDICT flag is
  /// set (RFC 1950 §2.2). Must be called before the header is consumed;
  /// streams demanding a dictionary fail without one or with a mismatched
  /// DICTID.
  void set_dictionary(std::span<const std::uint8_t> dictionary) {
    dictionary_.assign(dictionary.begin(), dictionary.end());
    have_dictionary_ = true;
  }

  /// Feeds compressed bytes; decompressed bytes are appended to `out`.
  Status feed(std::span<const std::uint8_t> in, std::vector<std::uint8_t>& out);

  Status status() const { return status_; }
  const std::string& error() const { return error_; }
  std::size_t total_out() const { return total_out_; }
  std::size_t total_in() const { return input_.size(); }

 private:
  enum class State {
    kZlibHeader,
    kBlockHeader,
    kStoredLengths,
    kStoredData,
    kCompressedData,   // fixed or dynamic, codes already built
    kDynamicHeader,    // HLIT/HDIST/HCLEN
    kDynamicCodeLengths,
    kAdler,
    kDone,
    kError,
  };

  Status run(std::vector<std::uint8_t>& out);
  bool step(BitReader& reader, std::vector<std::uint8_t>& out,
            bool& need_more);
  void emit_byte(std::uint8_t byte, std::vector<std::uint8_t>& out);
  bool copy_match(unsigned length, unsigned dist,
                  std::vector<std::uint8_t>& out);
  Status fail(std::string message);

  Format format_;
  State state_ = State::kZlibHeader;
  Status status_ = Status::kInProgress;
  std::string error_;

  std::vector<std::uint8_t> input_;  // accumulated compressed bytes
  BitReader::Position pos_;          // resume point

  // Block state.
  bool final_block_ = false;
  unsigned stored_remaining_ = 0;
  HuffmanDecoder litlen_;
  HuffmanDecoder dist_;

  // Dynamic header state.
  unsigned hlit_ = 0, hdist_ = 0, hclen_ = 0;
  HuffmanDecoder cl_decoder_;
  std::vector<std::uint8_t> dyn_lengths_;  // combined litlen+dist lengths

  // 32 KB sliding window for back-references.
  std::vector<std::uint8_t> window_;
  std::size_t window_pos_ = 0;
  std::size_t window_filled_ = 0;

  std::size_t total_out_ = 0;
  std::uint32_t adler_ = 1;
  std::vector<std::uint8_t> dictionary_;
  bool have_dictionary_ = false;

  static constexpr std::size_t kWindow = 32768;

  void init_zlib_skipped() { state_ = State::kBlockHeader; }
};

/// One-shot convenience: returns empty vector + false on malformed input.
struct InflateResult {
  std::vector<std::uint8_t> data;
  bool ok = false;
  std::string error;
};
InflateResult zlib_decompress(std::span<const std::uint8_t> input);

}  // namespace hsim::deflate
