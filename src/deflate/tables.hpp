// Shared RFC 1951 constant tables: length/distance code bases and extra bits,
// fixed Huffman code lengths, and the code-length-code permutation order.
#pragma once

#include <array>
#include <cstdint>

namespace hsim::deflate {

inline constexpr unsigned kEndOfBlock = 256;
inline constexpr unsigned kNumLitLenSymbols = 288;
inline constexpr unsigned kNumDistSymbols = 30;
inline constexpr unsigned kMinMatch = 3;
inline constexpr unsigned kMaxMatch = 258;
inline constexpr unsigned kWindowSize = 32768;

/// Length codes 257..285: base match length and number of extra bits.
struct LengthCode {
  std::uint16_t base;
  std::uint8_t extra_bits;
};
inline constexpr std::array<LengthCode, 29> kLengthCodes = {{
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},
    {9, 0},   {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1},
    {19, 2},  {23, 2},  {27, 2},  {31, 2},  {35, 3},  {43, 3},
    {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}};

/// Distance codes 0..29: base distance and number of extra bits.
struct DistCode {
  std::uint16_t base;
  std::uint8_t extra_bits;
};
inline constexpr std::array<DistCode, 30> kDistCodes = {{
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},
    {7, 1},     {9, 2},     {13, 2},    {17, 3},    {25, 3},
    {33, 4},    {49, 4},    {65, 5},    {97, 5},    {129, 6},
    {193, 6},   {257, 7},   {385, 7},   {513, 8},   {769, 8},
    {1025, 9},  {1537, 9},  {2049, 10}, {3073, 10}, {4097, 11},
    {6145, 11}, {8193, 12}, {12289, 12}, {16385, 13}, {24577, 13},
}};

/// Order in which code-length-code lengths are transmitted (RFC 1951 §3.2.7).
inline constexpr std::array<std::uint8_t, 19> kCodeLengthOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

/// Maps a match length (3..258) to its length code index (0..28 => symbol
/// 257+index).
unsigned length_to_code(unsigned length);

/// Maps a distance (1..32768) to its distance code (0..29).
unsigned distance_to_code(unsigned distance);

/// Fixed Huffman literal/length code lengths (RFC 1951 §3.2.6).
std::array<std::uint8_t, kNumLitLenSymbols> fixed_litlen_lengths();

/// Fixed Huffman distance code lengths (all 5 bits, 32 symbols).
std::array<std::uint8_t, 32> fixed_dist_lengths();

}  // namespace hsim::deflate
