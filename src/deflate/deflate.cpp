#include "deflate/deflate.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "deflate/bitio.hpp"
#include "deflate/checksum.hpp"
#include "deflate/huffman.hpp"
#include "deflate/tables.hpp"

namespace hsim::deflate {

namespace {

// ---------------------------------------------------------------------------
// LZ77 matcher
// ---------------------------------------------------------------------------

struct Token {
  // literal when dist == 0; match of (length, dist) otherwise
  std::uint16_t length_or_literal;
  std::uint16_t dist;
};

struct MatcherParams {
  unsigned max_chain;   // hash chain positions examined per match attempt
  unsigned good_match;  // stop searching when a match this long is found
  bool lazy;            // defer one byte looking for a longer match
};

MatcherParams params_for_level(int level) {
  if (level <= 1) return {8, 8, false};
  if (level <= 3) return {32, 16, false};
  if (level <= 6) return {128, 64, true};
  return {1024, 258, true};
}

class Lz77 {
 public:
  Lz77(std::span<const std::uint8_t> input, MatcherParams params)
      : in_(input), params_(params) {
    head_.assign(kHashSize, -1);
    prev_.assign(kWindowSize, -1);
  }

  /// Tokenizes the input, emitting tokens only from `emit_from` onward;
  /// earlier bytes (a preset dictionary) are indexed for matching but not
  /// represented in the output token stream.
  std::vector<Token> tokenize(std::size_t emit_from = 0) {
    std::vector<Token> tokens;
    tokens.reserve(in_.size() / 3 + 16);
    std::size_t pos = 0;
    while (pos < emit_from && pos < in_.size()) {
      insert_hash(pos);
      ++pos;
    }
    // Pending literal for lazy matching.
    bool have_prev_match = false;
    unsigned prev_len = 0, prev_dist = 0;

    while (pos < in_.size()) {
      unsigned len = 0, dist = 0;
      if (pos + kMinMatch <= in_.size()) {
        find_match(pos, len, dist);
      }
      if (params_.lazy && have_prev_match) {
        // Previous position had a match; emit it unless this one is longer.
        if (len > prev_len) {
          // Previous byte becomes a literal; current match pends.
          tokens.push_back({in_[pos - 1], 0});
          prev_len = len;
          prev_dist = dist;
          insert_hash(pos);
          ++pos;
          continue;
        }
        // Emit the previous match (it started at pos-1).
        tokens.push_back({static_cast<std::uint16_t>(prev_len),
                          static_cast<std::uint16_t>(prev_dist)});
        // Insert hash entries for the matched span (pos-1 already inserted).
        const std::size_t match_end = pos - 1 + prev_len;
        while (pos < match_end && pos < in_.size()) {
          insert_hash(pos);
          ++pos;
        }
        have_prev_match = false;
        continue;
      }
      if (len >= kMinMatch) {
        if (params_.lazy && len < params_.good_match &&
            pos + 1 + kMinMatch <= in_.size()) {
          // Defer: remember this match, try the next position.
          prev_len = len;
          prev_dist = dist;
          have_prev_match = true;
          insert_hash(pos);
          ++pos;
          continue;
        }
        tokens.push_back({static_cast<std::uint16_t>(len),
                          static_cast<std::uint16_t>(dist)});
        const std::size_t match_end = pos + len;
        while (pos < match_end && pos < in_.size()) {
          insert_hash(pos);
          ++pos;
        }
        continue;
      }
      tokens.push_back({in_[pos], 0});
      insert_hash(pos);
      ++pos;
    }
    if (have_prev_match) {
      tokens.push_back({static_cast<std::uint16_t>(prev_len),
                        static_cast<std::uint16_t>(prev_dist)});
      // Trailing literals inside the final match were already consumed by the
      // position loop above (pos advanced past them before loop exit).
    }
    return tokens;
  }

 private:
  static constexpr std::size_t kHashSize = 1 << 15;

  unsigned hash_at(std::size_t pos) const {
    return ((in_[pos] << 10) ^ (in_[pos + 1] << 5) ^ in_[pos + 2]) &
           (kHashSize - 1);
  }

  void insert_hash(std::size_t pos) {
    if (pos + kMinMatch > in_.size()) return;
    const unsigned h = hash_at(pos);
    prev_[pos & (kWindowSize - 1)] = head_[h];
    head_[h] = static_cast<std::int64_t>(pos);
  }

  void find_match(std::size_t pos, unsigned& best_len,
                  unsigned& best_dist) const {
    best_len = 0;
    best_dist = 0;
    const unsigned h = hash_at(pos);
    std::int64_t cand = head_[h];
    const std::size_t max_len =
        std::min<std::size_t>(kMaxMatch, in_.size() - pos);
    unsigned chain = params_.max_chain;
    const std::size_t min_pos =
        pos >= kWindowSize ? pos - kWindowSize + 1 : 0;
    while (cand >= 0 && static_cast<std::size_t>(cand) >= min_pos &&
           chain-- > 0) {
      const std::size_t c = static_cast<std::size_t>(cand);
      if (c < pos) {
        // Quick reject on the byte just past the current best.
        if (best_len == 0 ||
            (c + best_len < in_.size() && pos + best_len < in_.size() &&
             in_[c + best_len] == in_[pos + best_len])) {
          std::size_t l = 0;
          while (l < max_len && in_[c + l] == in_[pos + l]) ++l;
          if (l > best_len) {
            best_len = static_cast<unsigned>(l);
            best_dist = static_cast<unsigned>(pos - c);
            if (best_len >= params_.good_match || best_len == max_len) break;
          }
        }
      }
      cand = prev_[c & (kWindowSize - 1)];
    }
    if (best_len < kMinMatch) {
      best_len = 0;
      best_dist = 0;
    }
  }

  std::span<const std::uint8_t> in_;
  MatcherParams params_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> prev_;
};

// ---------------------------------------------------------------------------
// Block emission
// ---------------------------------------------------------------------------

struct BlockCodes {
  std::vector<std::uint8_t> litlen_lengths;
  std::vector<std::uint8_t> dist_lengths;
};

void count_frequencies(std::span<const Token> tokens,
                       std::array<std::uint32_t, kNumLitLenSymbols>& lit_freq,
                       std::array<std::uint32_t, kNumDistSymbols>& dist_freq) {
  lit_freq.fill(0);
  dist_freq.fill(0);
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      ++lit_freq[t.length_or_literal];
    } else {
      ++lit_freq[257 + length_to_code(t.length_or_literal)];
      ++dist_freq[distance_to_code(t.dist)];
    }
  }
  ++lit_freq[kEndOfBlock];
}

std::uint64_t token_cost_bits(
    std::span<const Token> tokens,
    std::span<const std::uint8_t> litlen_lengths,
    std::span<const std::uint8_t> dist_lengths) {
  std::uint64_t bits = 0;
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      bits += litlen_lengths[t.length_or_literal];
    } else {
      const unsigned lcode = length_to_code(t.length_or_literal);
      bits += litlen_lengths[257 + lcode] + kLengthCodes[lcode].extra_bits;
      const unsigned dcode = distance_to_code(t.dist);
      bits += dist_lengths[dcode] + kDistCodes[dcode].extra_bits;
    }
  }
  bits += litlen_lengths[kEndOfBlock];
  return bits;
}

/// RLE-encodes the combined litlen+dist code length sequence per RFC 1951
/// §3.2.7. Each element is (symbol 0..18, extra_value, extra_bits).
struct ClSymbol {
  std::uint8_t symbol;
  std::uint8_t extra;
  std::uint8_t extra_bits;
};

std::vector<ClSymbol> rle_code_lengths(std::span<const std::uint8_t> lengths) {
  std::vector<ClSymbol> out;
  std::size_t i = 0;
  while (i < lengths.size()) {
    const std::uint8_t v = lengths[i];
    std::size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == v) ++run;
    if (v == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t n = std::min<std::size_t>(left, 138);
        out.push_back({18, static_cast<std::uint8_t>(n - 11), 7});
        left -= n;
      }
      while (left >= 3) {
        const std::size_t n = std::min<std::size_t>(left, 10);
        out.push_back({17, static_cast<std::uint8_t>(n - 3), 3});
        left -= n;
      }
      while (left-- > 0) out.push_back({0, 0, 0});
    } else {
      out.push_back({v, 0, 0});
      std::size_t left = run - 1;
      while (left >= 3) {
        const std::size_t n = std::min<std::size_t>(left, 6);
        out.push_back({16, static_cast<std::uint8_t>(n - 3), 2});
        left -= n;
      }
      while (left-- > 0) out.push_back({v, 0, 0});
    }
    i += run;
  }
  return out;
}

void write_tokens(BitWriter& out, std::span<const Token> tokens,
                  const HuffmanEncoder& lit, const HuffmanEncoder& dist) {
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      lit.write_symbol(out, t.length_or_literal);
    } else {
      const unsigned lcode = length_to_code(t.length_or_literal);
      lit.write_symbol(out, 257 + lcode);
      if (kLengthCodes[lcode].extra_bits > 0) {
        out.write_bits(t.length_or_literal - kLengthCodes[lcode].base,
                       kLengthCodes[lcode].extra_bits);
      }
      const unsigned dcode = distance_to_code(t.dist);
      dist.write_symbol(out, dcode);
      if (kDistCodes[dcode].extra_bits > 0) {
        out.write_bits(t.dist - kDistCodes[dcode].base,
                       kDistCodes[dcode].extra_bits);
      }
    }
  }
  lit.write_symbol(out, kEndOfBlock);
}

/// Emits one block choosing the cheapest representation.
void emit_block(BitWriter& out, std::span<const std::uint8_t> raw,
                std::span<const Token> tokens, bool final_block,
                bool force_stored) {
  // --- candidate 1: dynamic Huffman ---
  std::array<std::uint32_t, kNumLitLenSymbols> lit_freq;
  std::array<std::uint32_t, kNumDistSymbols> dist_freq;
  count_frequencies(tokens, lit_freq, dist_freq);

  std::vector<std::uint8_t> dyn_lit =
      build_code_lengths(lit_freq, 15);
  std::vector<std::uint8_t> dyn_dist = build_code_lengths(dist_freq, 15);
  // DEFLATE requires at least one distance code to be describable.
  if (std::all_of(dyn_dist.begin(), dyn_dist.end(),
                  [](std::uint8_t l) { return l == 0; })) {
    dyn_dist[0] = 1;
  }

  unsigned hlit = kNumLitLenSymbols;
  while (hlit > 257 && dyn_lit[hlit - 1] == 0) --hlit;
  unsigned hdist = kNumDistSymbols;
  while (hdist > 1 && dyn_dist[hdist - 1] == 0) --hdist;

  std::vector<std::uint8_t> combined(dyn_lit.begin(), dyn_lit.begin() + hlit);
  combined.insert(combined.end(), dyn_dist.begin(), dyn_dist.begin() + hdist);
  const std::vector<ClSymbol> cl_seq = rle_code_lengths(combined);

  std::array<std::uint32_t, 19> cl_freq{};
  for (const ClSymbol& s : cl_seq) ++cl_freq[s.symbol];
  std::vector<std::uint8_t> cl_lengths = build_code_lengths(cl_freq, 7);

  unsigned hclen = 19;
  while (hclen > 4 && cl_lengths[kCodeLengthOrder[hclen - 1]] == 0) --hclen;

  std::uint64_t dyn_bits = 5 + 5 + 4 + hclen * 3;
  for (const ClSymbol& s : cl_seq) {
    dyn_bits += cl_lengths[s.symbol] + s.extra_bits;
  }
  dyn_bits += token_cost_bits(tokens, dyn_lit, dyn_dist);

  // --- candidate 2: fixed Huffman ---
  const auto fixed_lit = fixed_litlen_lengths();
  const auto fixed_dist = fixed_dist_lengths();
  const std::uint64_t fixed_bits = token_cost_bits(
      tokens, std::span(fixed_lit.data(), fixed_lit.size()),
      std::span(fixed_dist.data(), fixed_dist.size()));

  // --- candidate 3: stored (cost depends on current bit alignment; use the
  // worst case of 7 alignment bits plus 32 bits of lengths). Only viable when
  // the caller could supply the raw bytes (blocks > 65535 raw bytes cannot be
  // stored and pass an empty span).
  const bool stored_viable = !raw.empty() || tokens.empty();
  const std::uint64_t stored_bits = 7 + 32 + raw.size() * 8;

  out.write_bits(final_block ? 1 : 0, 1);
  if (force_stored ||
      (stored_viable && stored_bits < dyn_bits + 3 &&
       stored_bits < fixed_bits + 3)) {
    out.write_bits(0b00, 2);  // BTYPE=00 stored
    out.align_to_byte();
    const std::uint16_t len = static_cast<std::uint16_t>(raw.size());
    out.write_bits(len, 16);
    out.write_bits(static_cast<std::uint16_t>(~len), 16);
    out.write_bytes(raw);
    return;
  }
  if (fixed_bits <= dyn_bits) {
    out.write_bits(0b01, 2);  // BTYPE=01 fixed
    HuffmanEncoder lit(std::span(fixed_lit.data(), fixed_lit.size()));
    HuffmanEncoder dist(std::span(fixed_dist.data(), fixed_dist.size()));
    write_tokens(out, tokens, lit, dist);
    return;
  }
  out.write_bits(0b10, 2);  // BTYPE=10 dynamic
  out.write_bits(hlit - 257, 5);
  out.write_bits(hdist - 1, 5);
  out.write_bits(hclen - 4, 4);
  HuffmanEncoder cl_enc(cl_lengths);
  for (unsigned i = 0; i < hclen; ++i) {
    out.write_bits(cl_lengths[kCodeLengthOrder[i]], 3);
  }
  for (const ClSymbol& s : cl_seq) {
    cl_enc.write_symbol(out, s.symbol);
    if (s.extra_bits > 0) out.write_bits(s.extra, s.extra_bits);
  }
  HuffmanEncoder lit(dyn_lit);
  HuffmanEncoder dist(dyn_dist);
  write_tokens(out, tokens, lit, dist);
}

}  // namespace

namespace {
/// Deflates `full[emit_from..]`, with `full[0..emit_from)` acting as a
/// preset dictionary (indexed for back-references, not emitted).
std::vector<std::uint8_t> deflate_body(std::span<const std::uint8_t> full,
                                       std::size_t emit_from,
                                       DeflateOptions options) {
  BitWriter out;
  Lz77 matcher(full, params_for_level(std::max(options.level, 1)));
  const std::vector<Token> tokens = matcher.tokenize(emit_from);

  constexpr std::size_t kTokensPerBlock = 65536;
  std::size_t t = 0;
  std::size_t raw_pos = emit_from;
  if (tokens.empty()) {
    emit_block(out, {}, {}, /*final_block=*/true, /*force_stored=*/true);
    return out.take();
  }
  while (t < tokens.size()) {
    const std::size_t count =
        std::min<std::size_t>(kTokensPerBlock, tokens.size() - t);
    std::size_t raw_len = 0;
    for (std::size_t i = t; i < t + count; ++i) {
      raw_len += tokens[i].dist == 0 ? 1 : tokens[i].length_or_literal;
    }
    const bool final_block = (t + count == tokens.size());
    const bool storable = raw_len <= 65535;
    emit_block(out, full.subspan(raw_pos, storable ? raw_len : 0),
               std::span(tokens).subspan(t, count), final_block,
               /*force_stored=*/false);
    t += count;
    raw_pos += raw_len;
    if (final_block) break;
  }
  return out.take();
}
}  // namespace

std::vector<std::uint8_t> deflate_compress(std::span<const std::uint8_t> input,
                                           DeflateOptions options) {
  BitWriter out;
  if (input.empty()) {
    // A single empty stored block.
    out.write_bits(1, 1);
    out.write_bits(0b00, 2);
    out.align_to_byte();
    out.write_bits(0, 16);
    out.write_bits(0xFFFF, 16);
    return out.take();
  }

  if (options.level <= 0) {
    // Stored blocks only, 65535-byte chunks.
    std::size_t pos = 0;
    while (pos < input.size()) {
      const std::size_t n = std::min<std::size_t>(65535, input.size() - pos);
      const bool final_block = pos + n == input.size();
      emit_block(out, input.subspan(pos, n), {}, final_block,
                 /*force_stored=*/true);
      pos += n;
    }
    return out.take();
  }

  // Tokenize the whole input (the matcher window handles distances), then
  // emit in blocks of bounded token count so Huffman codes stay adaptive.
  return deflate_body(input, 0, options);
}

std::vector<std::uint8_t> zlib_compress(std::span<const std::uint8_t> input,
                                        DeflateOptions options) {
  std::vector<std::uint8_t> out;
  // CMF: CM=8 (deflate), CINFO=7 (32K window). FLG: check bits, no dict,
  // FLEVEL=2 (default).
  const std::uint8_t cmf = 0x78;
  std::uint8_t flg = 2 << 6;
  const unsigned rem = (cmf * 256 + flg) % 31;
  if (rem != 0) flg += static_cast<std::uint8_t>(31 - rem);
  out.push_back(cmf);
  out.push_back(flg);
  std::vector<std::uint8_t> body = deflate_compress(input, options);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t adler = adler32(input);
  out.push_back(static_cast<std::uint8_t>(adler >> 24));
  out.push_back(static_cast<std::uint8_t>(adler >> 16));
  out.push_back(static_cast<std::uint8_t>(adler >> 8));
  out.push_back(static_cast<std::uint8_t>(adler));
  return out;
}

std::vector<std::uint8_t> zlib_compress(std::string_view text,
                                        DeflateOptions options) {
  return zlib_compress(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size()),
      options);
}

std::vector<std::uint8_t> zlib_compress_with_dictionary(
    std::span<const std::uint8_t> input,
    std::span<const std::uint8_t> dictionary, DeflateOptions options) {
  std::vector<std::uint8_t> out;
  const std::uint8_t cmf = 0x78;
  std::uint8_t flg = (2 << 6) | 0x20;  // FLEVEL=2, FDICT set
  const unsigned rem = (cmf * 256 + flg) % 31;
  if (rem != 0) {
    flg = static_cast<std::uint8_t>(flg + (31 - rem));
  }
  out.push_back(cmf);
  out.push_back(flg);
  const std::uint32_t dictid = adler32(dictionary);
  out.push_back(static_cast<std::uint8_t>(dictid >> 24));
  out.push_back(static_cast<std::uint8_t>(dictid >> 16));
  out.push_back(static_cast<std::uint8_t>(dictid >> 8));
  out.push_back(static_cast<std::uint8_t>(dictid));

  // Concatenate dictionary + input; only input tokens are emitted, but
  // matches may reach back into the dictionary (bounded by the 32 KB window).
  std::vector<std::uint8_t> full;
  const std::size_t dict_keep =
      std::min<std::size_t>(dictionary.size(), kWindowSize);
  full.reserve(dict_keep + input.size());
  full.insert(full.end(), dictionary.end() - dict_keep, dictionary.end());
  full.insert(full.end(), input.begin(), input.end());
  const auto body = deflate_body(full, dict_keep, options);
  out.insert(out.end(), body.begin(), body.end());

  const std::uint32_t adler = adler32(input);
  out.push_back(static_cast<std::uint8_t>(adler >> 24));
  out.push_back(static_cast<std::uint8_t>(adler >> 16));
  out.push_back(static_cast<std::uint8_t>(adler >> 8));
  out.push_back(static_cast<std::uint8_t>(adler));
  return out;
}

std::vector<std::uint8_t> html_preset_dictionary() {
  // Frequent 1997 markup phrases, most-common last (DEFLATE prefers short
  // distances, which point at the *end* of the dictionary).
  static const char kDict[] =
      "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 3.2//EN\">"
      "{ color: white; background: #FC0; font: bold oblique sans-serif; "
      "padding: 0.2em 1em; margin: 0; text-align: center }"
      "</option></select></form></style></script></title></head></body>"
      "</html>\n<meta http-equiv=\"Content-Type\" content=\"text/html\">"
      "<input type=\"text\" name=\"\" value=\"\"><br><p><hr><center>"
      "</center></b></i></u></em></strong><ul><li></li></ul><h1></h1>"
      "<table border=\"0\" cellspacing=\"0\" cellpadding=\"0\" width=\"600\">"
      "</table><tr><td align=\"left\" valign=\"top\" bgcolor=\"#FFFFFF\">"
      "</td></tr>\n<font face=\"Arial, Helvetica\" size=\"2\" "
      "color=\"#000000\"></font><a href=\"http://www.\"><img src=\"/images/"
      ".gif\" width=\"\" height=\"\" border=\"0\" alt=\"\"></a>";
  const auto* begin = reinterpret_cast<const std::uint8_t*>(kDict);
  return std::vector<std::uint8_t>(begin, begin + sizeof(kDict) - 1);
}

}  // namespace hsim::deflate
