// Canonical Huffman codes for DEFLATE: length-limited code construction via
// the package-merge algorithm, canonical code assignment (RFC 1951 §3.2.2),
// and a decoder driven by per-length first-code arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/bitio.hpp"

namespace hsim::deflate {

/// Computes optimal code lengths (max `max_bits`) for the given symbol
/// frequencies using package-merge. Symbols with zero frequency get length 0.
/// If only one symbol has nonzero frequency it receives length 1 (DEFLATE
/// requires at least a 1-bit code).
std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint32_t> freqs, unsigned max_bits);

/// Assigns canonical codes from code lengths per RFC 1951 §3.2.2.
/// Returns codes in natural (not bit-reversed) form.
std::vector<std::uint32_t> assign_canonical_codes(
    std::span<const std::uint8_t> lengths);

/// Encoder-side table: bit-reversed codes ready for an LSB-first BitWriter.
class HuffmanEncoder {
 public:
  /// Builds from code lengths (canonical codes are implied).
  explicit HuffmanEncoder(std::span<const std::uint8_t> lengths);

  void write_symbol(BitWriter& out, unsigned symbol) const {
    out.write_bits(reversed_codes_[symbol], lengths_[symbol]);
  }

  std::uint8_t length_of(unsigned symbol) const { return lengths_[symbol]; }
  std::size_t size() const { return lengths_.size(); }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> reversed_codes_;
};

/// Decoder-side table using canonical first-code arithmetic: codes are read
/// bit by bit; at each length the accumulated code is compared against the
/// range assigned to that length.
class HuffmanDecoder {
 public:
  HuffmanDecoder() = default;

  /// Builds from code lengths. Returns false if the lengths are invalid
  /// (over-subscribed Kraft sum).
  bool build(std::span<const std::uint8_t> lengths);

  /// Decodes one symbol. Returns the symbol, or -1 if the reader ran out of
  /// bits (caller should roll back and wait for more input), or -2 if the
  /// bit pattern is invalid for this code.
  int decode(BitReader& in) const;

  bool valid() const { return valid_; }

 private:
  static constexpr unsigned kMaxBits = 15;
  // count_[l]  = number of codes of length l
  // first_[l]  = first canonical code of length l
  // offset_[l] = index into sorted_ of the first symbol with length l
  std::uint16_t count_[kMaxBits + 1] = {};
  std::uint32_t first_[kMaxBits + 1] = {};
  std::uint16_t offset_[kMaxBits + 1] = {};
  std::vector<std::uint16_t> sorted_;  // symbols ordered by (length, symbol)
  bool valid_ = false;
};

}  // namespace hsim::deflate
