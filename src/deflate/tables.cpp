#include "deflate/tables.hpp"

namespace hsim::deflate {

unsigned length_to_code(unsigned length) {
  // Linear scan is fine: 29 entries, called through a cached table below.
  static const auto table = [] {
    std::array<std::uint8_t, kMaxMatch + 1> t{};
    for (unsigned len = kMinMatch; len <= kMaxMatch; ++len) {
      unsigned code = 0;
      for (unsigned i = 0; i < kLengthCodes.size(); ++i) {
        const unsigned hi = (i + 1 < kLengthCodes.size())
                                ? kLengthCodes[i + 1].base
                                : kMaxMatch + 1;
        if (len >= kLengthCodes[i].base && len < hi) {
          code = i;
          break;
        }
      }
      // Length 258 is its own code (28), not 227+extra.
      if (len == kMaxMatch) code = 28;
      t[len] = static_cast<std::uint8_t>(code);
    }
    return t;
  }();
  return table[length];
}

unsigned distance_to_code(unsigned distance) {
  // Binary search over the 30 bases.
  unsigned lo = 0, hi = kDistCodes.size() - 1;
  while (lo < hi) {
    const unsigned mid = (lo + hi + 1) / 2;
    if (kDistCodes[mid].base <= distance) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::array<std::uint8_t, kNumLitLenSymbols> fixed_litlen_lengths() {
  std::array<std::uint8_t, kNumLitLenSymbols> lengths{};
  for (unsigned i = 0; i <= 143; ++i) lengths[i] = 8;
  for (unsigned i = 144; i <= 255; ++i) lengths[i] = 9;
  for (unsigned i = 256; i <= 279; ++i) lengths[i] = 7;
  for (unsigned i = 280; i <= 287; ++i) lengths[i] = 8;
  return lengths;
}

std::array<std::uint8_t, 32> fixed_dist_lengths() {
  std::array<std::uint8_t, 32> lengths{};
  lengths.fill(5);
  return lengths;
}

}  // namespace hsim::deflate
