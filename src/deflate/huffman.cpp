#include "deflate/huffman.hpp"

#include <algorithm>
#include <cassert>

namespace hsim::deflate {

std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint32_t> freqs, unsigned max_bits) {
  std::vector<std::uint8_t> lengths(freqs.size(), 0);

  struct Leaf {
    std::uint64_t freq;
    std::uint16_t symbol;
  };
  std::vector<Leaf> leaves;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] > 0) {
      leaves.push_back({freqs[i], static_cast<std::uint16_t>(i)});
    }
  }
  if (leaves.empty()) return lengths;
  if (leaves.size() == 1) {
    lengths[leaves[0].symbol] = 1;
    return lengths;
  }
  std::sort(leaves.begin(), leaves.end(), [](const Leaf& a, const Leaf& b) {
    return a.freq < b.freq || (a.freq == b.freq && a.symbol < b.symbol);
  });

  // Package-merge. A package is a weight plus the multiset of leaves it
  // contains; every time a leaf appears in a selected package its code
  // length grows by one. With n <= 288 symbols and max_bits <= 15 the
  // quadratic representation is entirely adequate.
  struct Package {
    std::uint64_t weight;
    std::vector<std::uint16_t> symbols;
  };
  auto leaf_packages = [&] {
    std::vector<Package> v;
    v.reserve(leaves.size());
    for (const Leaf& l : leaves) v.push_back({l.freq, {l.symbol}});
    return v;
  };

  std::vector<Package> row = leaf_packages();
  for (unsigned level = 1; level < max_bits; ++level) {
    // Pair up adjacent packages.
    std::vector<Package> paired;
    for (std::size_t i = 0; i + 1 < row.size(); i += 2) {
      Package p;
      p.weight = row[i].weight + row[i + 1].weight;
      p.symbols = row[i].symbols;
      p.symbols.insert(p.symbols.end(), row[i + 1].symbols.begin(),
                       row[i + 1].symbols.end());
      paired.push_back(std::move(p));
    }
    // Merge the original leaves back in, keeping weight order.
    std::vector<Package> next = leaf_packages();
    next.insert(next.end(), std::make_move_iterator(paired.begin()),
                std::make_move_iterator(paired.end()));
    std::stable_sort(next.begin(), next.end(),
                     [](const Package& a, const Package& b) {
                       return a.weight < b.weight;
                     });
    row = std::move(next);
  }

  // Select the first 2n-2 packages; each occurrence of a leaf adds one bit.
  const std::size_t take = 2 * leaves.size() - 2;
  for (std::size_t i = 0; i < take && i < row.size(); ++i) {
    for (std::uint16_t s : row[i].symbols) ++lengths[s];
  }
  return lengths;
}

std::vector<std::uint32_t> assign_canonical_codes(
    std::span<const std::uint8_t> lengths) {
  constexpr unsigned kMaxBits = 15;
  std::uint32_t bl_count[kMaxBits + 1] = {};
  for (std::uint8_t l : lengths) {
    assert(l <= kMaxBits);
    if (l > 0) ++bl_count[l];
  }
  std::uint32_t next_code[kMaxBits + 1] = {};
  std::uint32_t code = 0;
  for (unsigned bits = 1; bits <= kMaxBits; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) codes[i] = next_code[lengths[i]]++;
  }
  return codes;
}

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint8_t> lengths)
    : lengths_(lengths.begin(), lengths.end()) {
  const std::vector<std::uint32_t> codes = assign_canonical_codes(lengths);
  reversed_codes_.resize(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    reversed_codes_[i] = reverse_bits(codes[i], lengths_[i]);
  }
}

bool HuffmanDecoder::build(std::span<const std::uint8_t> lengths) {
  valid_ = false;
  std::fill(std::begin(count_), std::end(count_), 0);
  sorted_.clear();
  for (std::uint8_t l : lengths) {
    if (l > kMaxBits) return false;
    if (l > 0) ++count_[l];
  }
  // Kraft check: the code must not be over-subscribed.
  std::int64_t left = 1;
  for (unsigned l = 1; l <= kMaxBits; ++l) {
    left <<= 1;
    left -= count_[l];
    if (left < 0) return false;
  }
  // offsets of first symbol per length within sorted_.
  std::uint16_t offs[kMaxBits + 1] = {};
  for (unsigned l = 1; l < kMaxBits; ++l) {
    offs[l + 1] = static_cast<std::uint16_t>(offs[l] + count_[l]);
  }
  std::copy(std::begin(offs), std::end(offs), std::begin(offset_));
  sorted_.resize(offs[kMaxBits] + count_[kMaxBits]);
  {
    std::uint16_t fill[kMaxBits + 1];
    std::copy(std::begin(offs), std::end(offs), std::begin(fill));
    for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
      const std::uint8_t l = lengths[sym];
      if (l > 0) sorted_[fill[l]++] = static_cast<std::uint16_t>(sym);
    }
  }
  // first canonical code per length.
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxBits; ++l) {
    code = (code + count_[l - 1]) << 1;
    first_[l] = code;
  }
  valid_ = true;
  return true;
}

int HuffmanDecoder::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxBits; ++len) {
    if (!in.can_read(1)) return -1;
    code = (code << 1) | in.read_bit();
    if (count_[len] != 0 && code < first_[len] + count_[len] &&
        code >= first_[len]) {
      return sorted_[offset_[len] + (code - first_[len])];
    }
  }
  return -2;
}

}  // namespace hsim::deflate
