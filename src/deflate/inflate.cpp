#include "deflate/inflate.hpp"

#include <algorithm>
#include <array>

#include "deflate/checksum.hpp"
#include "deflate/tables.hpp"

namespace hsim::deflate {

Inflater::Status Inflater::feed(std::span<const std::uint8_t> in,
                                std::vector<std::uint8_t>& out) {
  if (status_ == Status::kError) return status_;
  input_.insert(input_.end(), in.begin(), in.end());
  if (format_ == Format::kRaw && state_ == State::kZlibHeader) {
    state_ = State::kBlockHeader;
  }
  return run(out);
}

Inflater::Status Inflater::fail(std::string message) {
  state_ = State::kError;
  status_ = Status::kError;
  error_ = std::move(message);
  return status_;
}

void Inflater::emit_byte(std::uint8_t byte, std::vector<std::uint8_t>& out) {
  out.push_back(byte);
  if (window_.size() < kWindow) {
    window_.push_back(byte);
  } else {
    window_[window_pos_] = byte;
  }
  window_pos_ = (window_pos_ + 1) % kWindow;
  window_filled_ = std::min(window_filled_ + 1, kWindow);
  ++total_out_;
  adler_ = adler32(std::span(&byte, 1), adler_);
}

bool Inflater::copy_match(unsigned length, unsigned dist,
                          std::vector<std::uint8_t>& out) {
  if (dist == 0 || dist > window_filled_) return false;
  for (unsigned i = 0; i < length; ++i) {
    const std::size_t src =
        (window_pos_ + kWindow - dist) % kWindow;
    const std::uint8_t byte =
        window_.size() < kWindow ? window_[window_.size() - dist]
                                 : window_[src];
    emit_byte(byte, out);
  }
  return true;
}

Inflater::Status Inflater::run(std::vector<std::uint8_t>& out) {
  BitReader reader(input_);
  reader.seek(pos_);
  bool need_more = false;
  while (!need_more && state_ != State::kDone && state_ != State::kError) {
    if (!step(reader, out, need_more)) break;
  }
  pos_ = reader.tell();
  if (state_ == State::kDone) status_ = Status::kDone;
  return status_;
}

// Returns false to stop the loop (error recorded or done); sets need_more
// when input ran dry (position already rolled back).
bool Inflater::step(BitReader& reader, std::vector<std::uint8_t>& out,
                    bool& need_more) {
  const BitReader::Position checkpoint = reader.tell();
  auto rollback = [&] {
    reader.seek(checkpoint);
    need_more = true;
    return true;
  };

  switch (state_) {
    case State::kZlibHeader: {
      if (!reader.can_read(16)) return rollback();
      reader.align_to_byte();
      const std::uint8_t cmf = reader.read_aligned_byte();
      const std::uint8_t flg = reader.read_aligned_byte();
      if ((cmf & 0x0F) != 8) {
        fail("zlib: compression method is not deflate");
        return false;
      }
      if (((cmf >> 4) & 0x0F) > 7) {
        fail("zlib: window size too large");
        return false;
      }
      if ((cmf * 256u + flg) % 31 != 0) {
        fail("zlib: header check failed");
        return false;
      }
      if (flg & 0x20) {
        // FDICT: a 4-byte DICTID follows; the caller must have supplied the
        // matching dictionary via set_dictionary().
        if (!reader.can_read(32)) return rollback();
        std::uint32_t dictid = 0;
        for (int i = 0; i < 4; ++i) {
          dictid = (dictid << 8) | reader.read_aligned_byte();
        }
        if (!have_dictionary_) {
          fail("zlib: stream requires a preset dictionary");
          return false;
        }
        if (adler32(dictionary_) != dictid) {
          fail("zlib: preset dictionary id mismatch");
          return false;
        }
        // Prime the back-reference window without producing output.
        const std::size_t keep =
            std::min<std::size_t>(dictionary_.size(), kWindow);
        for (std::size_t i = dictionary_.size() - keep;
             i < dictionary_.size(); ++i) {
          const std::uint8_t byte = dictionary_[i];
          if (window_.size() < kWindow) {
            window_.push_back(byte);
          } else {
            window_[window_pos_] = byte;
          }
          window_pos_ = (window_pos_ + 1) % kWindow;
          window_filled_ = std::min(window_filled_ + 1, kWindow);
        }
      }
      state_ = State::kBlockHeader;
      return true;
    }

    case State::kBlockHeader: {
      if (!reader.can_read(3)) return rollback();
      final_block_ = reader.read_bit() != 0;
      const unsigned btype = reader.read_bits(2);
      if (btype == 0b00) {
        state_ = State::kStoredLengths;
      } else if (btype == 0b01) {
        const auto lit_lengths = fixed_litlen_lengths();
        const auto dist_lengths = fixed_dist_lengths();
        litlen_.build(lit_lengths);
        dist_.build(dist_lengths);
        state_ = State::kCompressedData;
      } else if (btype == 0b10) {
        state_ = State::kDynamicHeader;
      } else {
        fail("deflate: reserved block type");
        return false;
      }
      return true;
    }

    case State::kStoredLengths: {
      // LEN/NLEN are byte-aligned; alignment bits are consumed here, so the
      // checkpoint/rollback must cover both.
      BitReader probe = reader;
      probe.align_to_byte();
      if (!probe.can_read(32)) return rollback();
      reader.align_to_byte();
      const unsigned len = reader.read_aligned_byte() |
                           (reader.read_aligned_byte() << 8);
      const unsigned nlen = reader.read_aligned_byte() |
                            (reader.read_aligned_byte() << 8);
      if ((len ^ 0xFFFF) != nlen) {
        fail("deflate: stored block length check failed");
        return false;
      }
      stored_remaining_ = len;
      state_ = State::kStoredData;
      return true;
    }

    case State::kStoredData: {
      while (stored_remaining_ > 0) {
        if (!reader.can_read(8)) {
          need_more = true;
          return true;  // byte-aligned: consumed bytes stay consumed
        }
        emit_byte(reader.read_aligned_byte(), out);
        --stored_remaining_;
      }
      state_ = final_block_ ? State::kAdler : State::kBlockHeader;
      if (state_ == State::kAdler && format_ == Format::kRaw) {
        state_ = State::kDone;
      }
      return true;
    }

    case State::kDynamicHeader: {
      if (!reader.can_read(14)) return rollback();
      hlit_ = reader.read_bits(5) + 257;
      hdist_ = reader.read_bits(5) + 1;
      hclen_ = reader.read_bits(4) + 4;
      // The code-length code lengths (3 bits each) follow immediately; they
      // are bounded (max 19*3 bits) so decode them in this step too.
      if (!reader.can_read(hclen_ * 3)) return rollback();
      std::array<std::uint8_t, 19> cl_lengths{};
      for (unsigned i = 0; i < hclen_; ++i) {
        cl_lengths[kCodeLengthOrder[i]] =
            static_cast<std::uint8_t>(reader.read_bits(3));
      }
      if (!cl_decoder_.build(cl_lengths)) {
        fail("deflate: invalid code-length code");
        return false;
      }
      dyn_lengths_.clear();
      state_ = State::kDynamicCodeLengths;
      return true;
    }

    case State::kDynamicCodeLengths: {
      while (dyn_lengths_.size() < hlit_ + hdist_) {
        const BitReader::Position sym_start = reader.tell();
        const int sym = cl_decoder_.decode(reader);
        if (sym == -1) {
          reader.seek(sym_start);
          need_more = true;
          return true;
        }
        if (sym < 0) {
          fail("deflate: bad code-length symbol");
          return false;
        }
        if (sym < 16) {
          dyn_lengths_.push_back(static_cast<std::uint8_t>(sym));
        } else if (sym == 16) {
          if (!reader.can_read(2)) {
            reader.seek(sym_start);
            need_more = true;
            return true;
          }
          if (dyn_lengths_.empty()) {
            fail("deflate: repeat with no previous length");
            return false;
          }
          const unsigned count = 3 + reader.read_bits(2);
          dyn_lengths_.insert(dyn_lengths_.end(), count, dyn_lengths_.back());
        } else {
          const unsigned extra = sym == 17 ? 3 : 7;
          if (!reader.can_read(extra)) {
            reader.seek(sym_start);
            need_more = true;
            return true;
          }
          const unsigned count =
              (sym == 17 ? 3 : 11) + reader.read_bits(extra);
          dyn_lengths_.insert(dyn_lengths_.end(), count, 0);
        }
      }
      if (dyn_lengths_.size() != hlit_ + hdist_) {
        fail("deflate: code length overflow");
        return false;
      }
      std::span<const std::uint8_t> all(dyn_lengths_);
      if (!litlen_.build(all.subspan(0, hlit_))) {
        fail("deflate: invalid literal/length code");
        return false;
      }
      if (!dist_.build(all.subspan(hlit_, hdist_))) {
        fail("deflate: invalid distance code");
        return false;
      }
      state_ = State::kCompressedData;
      return true;
    }

    case State::kCompressedData: {
      for (;;) {
        const BitReader::Position sym_start = reader.tell();
        const int sym = litlen_.decode(reader);
        if (sym == -1) {
          reader.seek(sym_start);
          need_more = true;
          return true;
        }
        if (sym < 0) {
          fail("deflate: bad literal/length code");
          return false;
        }
        if (sym < 256) {
          emit_byte(static_cast<std::uint8_t>(sym), out);
          continue;
        }
        if (sym == static_cast<int>(kEndOfBlock)) {
          state_ = final_block_ ? State::kAdler : State::kBlockHeader;
          if (state_ == State::kAdler && format_ == Format::kRaw) {
            state_ = State::kDone;
          }
          return true;
        }
        const unsigned lcode = static_cast<unsigned>(sym) - 257;
        if (lcode >= kLengthCodes.size()) {
          fail("deflate: invalid length code");
          return false;
        }
        if (!reader.can_read(kLengthCodes[lcode].extra_bits)) {
          reader.seek(sym_start);
          need_more = true;
          return true;
        }
        const unsigned length =
            kLengthCodes[lcode].base +
            reader.read_bits(kLengthCodes[lcode].extra_bits);
        const int dsym = dist_.decode(reader);
        if (dsym == -1) {
          reader.seek(sym_start);
          need_more = true;
          return true;
        }
        if (dsym < 0 || dsym >= static_cast<int>(kDistCodes.size())) {
          fail("deflate: bad distance code");
          return false;
        }
        if (!reader.can_read(kDistCodes[dsym].extra_bits)) {
          reader.seek(sym_start);
          need_more = true;
          return true;
        }
        const unsigned dist =
            kDistCodes[dsym].base +
            reader.read_bits(kDistCodes[dsym].extra_bits);
        if (!copy_match(length, dist, out)) {
          fail("deflate: distance beyond window");
          return false;
        }
      }
    }

    case State::kAdler: {
      BitReader probe = reader;
      probe.align_to_byte();
      if (!probe.can_read(32)) return rollback();
      reader.align_to_byte();
      std::uint32_t stored = 0;
      for (int i = 0; i < 4; ++i) {
        stored = (stored << 8) | reader.read_aligned_byte();
      }
      if (stored != adler_) {
        fail("zlib: Adler-32 mismatch");
        return false;
      }
      state_ = State::kDone;
      return true;
    }

    case State::kDone:
    case State::kError:
      return false;
  }
  return false;
}

InflateResult zlib_decompress(std::span<const std::uint8_t> input) {
  InflateResult result;
  Inflater inf(Inflater::Format::kZlib);
  const Inflater::Status s = inf.feed(input, result.data);
  result.ok = s == Inflater::Status::kDone;
  if (!result.ok) {
    result.error = s == Inflater::Status::kError ? inf.error()
                                                 : "truncated stream";
    result.data.clear();
  }
  return result;
}

}  // namespace hsim::deflate
