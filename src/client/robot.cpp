#include "client/robot.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "content/microscape.hpp"
#include "http/date.hpp"

namespace hsim::client {

std::string_view to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kConnectFailure: return "connect-failure";
    case FailureKind::kTransportFailure: return "transport-failure";
    case FailureKind::kRequestDeadline: return "request-deadline";
    case FailureKind::kPageDeadline: return "page-deadline";
    case FailureKind::kServerError: return "server-error";
    case FailureKind::kConnectionLost: return "connection-lost";
    case FailureKind::kRetryBudgetExhausted: return "retry-budget-exhausted";
  }
  return "?";
}

std::string_view to_string(ProtocolMode mode) {
  switch (mode) {
    case ProtocolMode::kHttp10Parallel: return "HTTP/1.0";
    case ProtocolMode::kHttp11Persistent: return "HTTP/1.1";
    case ProtocolMode::kHttp11Pipelined: return "HTTP/1.1 Pipelined";
    case ProtocolMode::kHttp11PipelinedCompressed:
      return "HTTP/1.1 Pipelined w. compression";
    case ProtocolMode::kH2: return "HTTP/2 mux";
  }
  return "?";
}

Robot::Metrics Robot::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  m.requests_sent = obs::counter_handle("client.requests_sent");
  m.retries = obs::counter_handle("client.retries");
  m.page_started_ns = obs::gauge_handle("client.page_started_ns");
  m.page_finished_ns = obs::gauge_handle("client.page_finished_ns");
  m.body_bytes = obs::gauge_handle("client.body_bytes");
  m.request_latency_us = obs::histogram_handle("client.request_latency_us");
  return m;
}

Robot::Robot(tcp::Host& host, net::IpAddr server_addr, net::Port server_port,
             ClientConfig config)
    : host_(host),
      server_addr_(server_addr),
      server_port_(server_port),
      config_(std::move(config)),
      retry_timer_(host.event_queue()),
      page_timer_(host.event_queue()),
      retry_rng_(config_.retry_jitter_seed) {}

Robot::~Robot() {
  for (const LanePtr& lane : lanes_) {
    if (lane->conn) {
      lane->conn->set_on_data({});
      lane->conn->set_on_connected({});
      lane->conn->set_on_closed({});
      lane->conn->set_on_reset({});
      lane->conn->set_on_peer_fin({});
      lane->conn->set_on_send_space({});
      lane->conn->set_on_failed({});
    }
  }
}

void Robot::begin(DoneCallback done) {
  done_ = std::move(done);
  stats_ = RobotStats{};
  stats_.started = host_.event_queue().now();
  metrics_.page_started_ns.set(stats_.started);
  metrics_.body_bytes.set(0);  // per-visit, like stats_.body_bytes
  queue_.clear();
  lanes_.clear();
  expected_responses_ = 0;
  completed_responses_ = 0;
  first_request_issued_ = false;
  finished_ = false;
  html_text_.clear();
  html_raw_consumed_ = 0;
  refs_discovered_ = 0;
  pushed_targets_.clear();
  inflater_.reset();
  retry_tokens_ = config_.retry_budget;
  retry_timer_.cancel();
  page_timer_.cancel();
  if (config_.page_deadline > 0) {
    page_timer_.arm(config_.page_deadline, [this] { on_page_deadline(); });
  }
}

void Robot::start_first_visit(const std::string& root, DoneCallback done) {
  begin(std::move(done));
  first_visit_ = true;
  root_target_ = root;
  PendingRequest req;
  req.target = root;
  req.is_root = true;
  ++expected_responses_;
  enqueue(std::move(req));
  pump();
}

void Robot::start_revalidation(const std::string& root, DoneCallback done) {
  begin(std::move(done));
  first_visit_ = false;
  root_target_ = root;

  // Root first, then every cached object, in document order if known.
  std::vector<std::string> targets;
  targets.push_back(root);
  for (const std::string& path : cache_.paths()) {
    if (path != root) targets.push_back(path);
  }
  for (const std::string& target : targets) {
    PendingRequest req;
    req.target = target;
    req.is_root = (target == root);
    switch (config_.revalidation) {
      case RevalidationStyle::kConditionalGet:
        req.method = http::Method::kGet;
        req.conditional = true;
        break;
      case RevalidationStyle::kGetPlusHead:
        // The old robot: plain GET for the page, HEAD for the images.
        req.method = req.is_root ? http::Method::kGet : http::Method::kHead;
        break;
      case RevalidationStyle::kUnconditionalGet:
        req.method = http::Method::kGet;
        break;
    }
    ++expected_responses_;
    enqueue(std::move(req));
  }
  pump();
}

void Robot::enqueue(PendingRequest request) { queue_.push_back(std::move(request)); }

Robot::LanePtr Robot::open_lane() {
  auto lane = std::make_shared<Lane>();
  lane->flush_timer = std::make_unique<sim::Timer>(host_.event_queue());
  lane->deadline_timer = std::make_unique<sim::Timer>(host_.event_queue());
  tcp::TcpOptions opts = config_.tcp;
  opts.nodelay = config_.nodelay;
  lane->conn = host_.connect(server_addr_, server_port_, opts);

  std::weak_ptr<Lane> weak = lane;
  lane->conn->set_on_connected([this, weak] {
    if (auto l = weak.lock()) {
      l->connected = true;
      pump_lane_output(l);
    }
  });
  lane->conn->set_on_data([this, weak] {
    if (auto l = weak.lock()) on_lane_data(l);
  });
  lane->conn->set_on_send_space([this, weak] {
    if (auto l = weak.lock()) pump_lane_output(l);
  });
  lane->conn->set_on_peer_fin([this, weak] {
    if (auto l = weak.lock()) {
      // Server finished sending: complete any read-until-close body.
      if (!l->h2) l->parser.on_connection_closed();
      on_lane_data(l);
      // Close our half as well (no more requests will ride this lane).
      l->conn->shutdown_send();
      if (!l->closed) {
        l->closed = true;
        on_lane_closed(l, LaneClose::kGraceful);
      }
    }
  });
  lane->conn->set_on_closed([this, weak] {
    if (auto l = weak.lock(); l && !l->closed) {
      l->closed = true;
      if (!l->h2) l->parser.on_connection_closed();
      on_lane_data(l);
      on_lane_closed(l, LaneClose::kGraceful);
    }
  });
  lane->conn->set_on_reset([this, weak] {
    if (auto l = weak.lock(); l && !l->closed) {
      l->closed = true;
      ++stats_.resets_seen;
      on_lane_closed(l, LaneClose::kReset);
    }
  });
  lane->conn->set_on_failed([this, weak] {
    // Terminal transport error: the TCP layer exhausted its retries (SYN cap
    // or max_data_retransmits) and tore the connection down.
    if (auto l = weak.lock(); l && !l->closed) {
      l->closed = true;
      on_lane_closed(l, l->connected ? LaneClose::kTransportFailure
                                     : LaneClose::kConnectFailure);
    }
  });
  if (config_.h2()) attach_h2_session(lane);
  lanes_.push_back(lane);
  return lane;
}

void Robot::attach_h2_session(const LanePtr& lane) {
  h2::SessionConfig sc;
  sc.is_server = false;
  // Advertise ENABLE_PUSH only when a push could ever be admitted: on a
  // revalidation visit every resource is fetched conditionally up front, so
  // the server should not bother promising anything.
  sc.enable_push =
      config_.h2_enable_push && config_.follow_embedded && first_visit_;
  sc.initial_window = config_.h2_initial_window;
  std::weak_ptr<Lane> weak = lane;
  lane->h2 = std::make_unique<h2::Session>(
      host_.event_queue(), sc, [this, weak](buf::Chain&& bytes) {
        if (auto l = weak.lock(); l && !l->closed) {
          l->out_unsent.append(std::move(bytes));
          pump_lane_output(l);
        }
      });
  h2::Session& session = *lane->h2;

  session.on_response = [this, weak](std::uint32_t id, http::Response res) {
    auto l = weak.lock();
    if (!l || finished_) return;
    auto it = l->h2_outstanding.find(id);
    if (it == l->h2_outstanding.end()) return;
    PendingRequest pending = std::move(it->second);
    l->h2_outstanding.erase(it);
    // A complete stream is "progress" (same rule as the HTTP/1.x pipeline).
    arm_request_deadline(l);
    deliver_response(l, std::move(pending), std::move(res));
  };
  // A finished push stream is bookkept exactly like a response to a request
  // we issued: the accepted promise already lives in h2_outstanding.
  session.on_push_response = session.on_response;

  session.on_stream_data = [this, weak](std::uint32_t id, std::size_t) {
    auto l = weak.lock();
    if (!l || finished_ || !first_visit_) return;
    auto it = l->h2_outstanding.find(id);
    if (it == l->h2_outstanding.end() || !it->second.is_root) return;
    if (const http::Response* partial = l->h2->stream_partial(id)) {
      scan_partial_body(*partial);
    }
  };

  session.on_push_promise = [this, weak](std::uint32_t id,
                                         const http::Request& req) {
    auto l = weak.lock();
    if (!l || finished_) return false;
    ++stats_.pushes_promised;
    if (!first_visit_ || !config_.follow_embedded ||
        pushed_targets_.count(req.target) != 0 ||
        cache_.find(req.target) != nullptr || target_in_flight(req.target)) {
      ++stats_.pushes_rejected;
      return false;
    }
    pushed_targets_.insert(req.target);
    ++stats_.pushes_accepted;
    ++expected_responses_;
    PendingRequest pending;
    pending.target = req.target;
    pending.from_push = true;
    pending.issued_at = host_.event_queue().now();
    l->h2_outstanding.emplace(id, std::move(pending));
    return true;
  };

  session.on_stream_reset = [this, weak](std::uint32_t id,
                                         h2::ErrorCode code) {
    auto l = weak.lock();
    if (!l || finished_) return;
    auto it = l->h2_outstanding.find(id);
    if (it == l->h2_outstanding.end()) return;
    PendingRequest req = std::move(it->second);
    l->h2_outstanding.erase(it);
    arm_request_deadline(l);
    const sim::Time now = host_.event_queue().now();
    if (req.from_push || code == h2::ErrorCode::kRefusedStream) {
      // REFUSED_STREAM — and a push the server abandoned — is an explicit
      // "not processed": re-issue as a plain request, free of charge.
      req.from_push = false;
      req.not_before = now;
      queue_.push_back(std::move(req));
    } else if (++req.attempts >= config_.max_attempts) {
      ++stats_.responses_error;
      fail_request(req, FailureKind::kConnectionLost);
    } else if (!consume_retry_token()) {
      fail_request(req, FailureKind::kRetryBudgetExhausted);
    } else {
      ++stats_.retries_after_reset;
      req.not_before = now + backoff_delay(req.attempts);
      queue_.push_back(std::move(req));
    }
    maybe_finish();
    if (!finished_) pump();
  };

  session.on_goaway = [this, weak](const h2::GoAway&) {
    if (auto l = weak.lock(); l && !finished_) ++stats_.h2_goaways_seen;
  };

  session.on_connection_error = [this, weak](const h2::DecodeError&) {
    auto l = weak.lock();
    if (!l || finished_ || l->closed) return;
    // The peer violated framing. The session already queued its GOAWAY
    // (pumped through the sink above); tear the transport down and recover
    // through the usual requeue path.
    l->closed = true;
    l->conn->abort();
    on_lane_closed(l, LaneClose::kTransportFailure);
  };
}

http::Request Robot::build_request(const PendingRequest& pending) const {
  http::Request req;
  req.method = pending.method;
  req.target = pending.target;
  req.version =
      config_.http11() ? http::Version::kHttp11 : http::Version::kHttp10;
  req.headers.add("Host", config_.host_header);
  req.headers.add("User-Agent", config_.profile.user_agent);
  for (const auto& [name, value] : config_.profile.extra_headers) {
    req.headers.add(name, value);
  }
  if (config_.wants_deflate()) {
    req.headers.add("Accept-Encoding", "deflate");
  }
  if (!config_.http11() && config_.profile.send_keep_alive) {
    req.headers.add("Connection", "Keep-Alive");
  }
  if (pending.conditional) {
    if (const CacheEntry* entry = cache_.find(pending.target)) {
      if (config_.use_etags && !entry->etag.empty()) {
        req.headers.add("If-None-Match", entry->etag);
      } else if (entry->last_modified != 0) {
        req.headers.add("If-Modified-Since",
                        http::format_http_date(entry->last_modified));
      }
      if (config_.validate_with_ranges && !pending.is_root &&
          config_.range_prefix_bytes > 0) {
        // Unchanged -> 304 as usual; changed -> 206 carrying only the
        // metadata prefix of the new entity.
        req.headers.add("Range",
                        "bytes=0-" +
                            std::to_string(config_.range_prefix_bytes - 1));
      }
    }
  }
  return req;
}

void Robot::issue_on_lane(const LanePtr& lane, PendingRequest pending) {
  if (config_.h2()) {
    const http::Request req = build_request(pending);
    first_request_issued_ = true;
    ++stats_.requests_sent;
    if (pending.attempts > 0) ++stats_.retries;
    metrics_.requests_sent.inc();
    if (pending.attempts > 0) metrics_.retries.inc();
    pending.issued_at = host_.event_queue().now();
    // The document stream outranks images so reference discovery (or the
    // server's push promises) starts flowing as early as possible.
    const std::uint32_t id =
        lane->h2->submit_request(req, pending.is_root ? 32 : 16);
    lane->h2_outstanding.emplace(id, std::move(pending));
    if (!lane->deadline_timer->armed()) arm_request_deadline(lane);
    return;
  }
  const http::Request req = build_request(pending);
  // Adopt the serialized request; the chain shares it from here on.
  lane->out_buffer.append(buf::Bytes(req.serialize()));
  lane->parser.push_request_context(pending.method);
  const bool is_first = !first_request_issued_;
  first_request_issued_ = true;
  ++stats_.requests_sent;
  if (pending.attempts > 0) ++stats_.retries;
  metrics_.requests_sent.inc();
  if (pending.attempts > 0) metrics_.retries.inc();
  pending.issued_at = host_.event_queue().now();
  lane->outstanding.push_back(std::move(pending));
  // The deadline clock covers the response at the head of the pipeline; it
  // is restarted as complete responses arrive (see on_lane_data).
  if (!lane->deadline_timer->armed()) arm_request_deadline(lane);

  if (!config_.pipelined()) {
    // Persistent / HTTP/1.0 modes write each request immediately.
    flush_lane(lane, /*explicit_flush=*/false);
    return;
  }
  // Pipelined: buffer, with three flush triggers (size, explicit, timer).
  if (is_first && config_.explicit_first_flush) {
    ++stats_.explicit_flushes;
    flush_lane(lane, true);
  } else if (lane->out_buffer.size() >= config_.pipeline_buffer) {
    ++stats_.size_flushes;
    flush_lane(lane, false);
  } else if (!lane->flush_timer->armed()) {
    std::weak_ptr<Lane> weak = lane;
    lane->flush_timer->arm(config_.flush_timeout, [this, weak] {
      if (auto l = weak.lock(); l && !l->out_buffer.empty()) {
        ++stats_.timer_flushes;
        flush_lane(l, false);
      }
    });
  }
}

void Robot::flush_lane(const LanePtr& lane, bool /*explicit_flush*/) {
  lane->flush_timer->cancel();
  if (!lane->out_buffer.empty()) {
    lane->out_unsent.append(std::move(lane->out_buffer));
  }
  pump_lane_output(lane);
}

void Robot::pump_lane_output(const LanePtr& lane) {
  if (!lane->connected || lane->closed) return;
  while (!lane->out_unsent.empty()) {
    const std::size_t want = lane->out_unsent.size();
    const std::size_t sent = lane->conn->send(lane->out_unsent);
    lane->out_unsent.pop_front(sent);
    if (sent < want) break;
  }
}

void Robot::pump() {
  if (finished_) return;
  const sim::Time now = host_.event_queue().now();
  // Retry backoff gates the queue head only: requests stay strictly FIFO
  // (reordering pipelined requests around a backed-off head would reorder
  // responses relative to request issue order).
  auto head_ready = [&] {
    return !queue_.empty() && queue_.front().not_before <= now;
  };
  auto arm_retry_wakeup = [&] {
    if (!queue_.empty() && queue_.front().not_before > now &&
        !retry_timer_.armed()) {
      retry_timer_.arm(queue_.front().not_before - now, [this] { pump(); });
    }
  };
  if (config_.pipelined() || config_.h2()) {
    // Single persistent connection carrying the whole pipeline (h2: the
    // whole set of concurrent streams).
    LanePtr lane;
    for (const LanePtr& l : lanes_) {
      if (!l->closed) {
        lane = l;
        break;
      }
    }
    if (!lane) {
      if (!head_ready()) {
        arm_retry_wakeup();
        return;
      }
      lane = open_lane();
    }
    while (head_ready()) {
      PendingRequest req = std::move(queue_.front());
      queue_.pop_front();
      issue_on_lane(lane, std::move(req));
    }
    arm_retry_wakeup();
    return;
  }

  // Non-pipelined: a pool of connections, one request outstanding per lane.
  // Covers plain HTTP/1.0 (lane dies per response), HTTP/1.0 + Keep-Alive
  // and HTTP/1.1 persistent (lane reused), and the browsers' N-parallel
  // strategies. First reuse idle lanes, then open new ones up to the cap.
  for (const LanePtr& lane : lanes_) {
    if (!head_ready()) break;
    if (!lane->closed && lane->connected && lane->outstanding.empty()) {
      PendingRequest req = std::move(queue_.front());
      queue_.pop_front();
      issue_on_lane(lane, std::move(req));
    }
  }
  auto open_count = [&] {
    std::size_t n = 0;
    for (const LanePtr& l : lanes_) {
      if (!l->closed) ++n;
    }
    return n;
  };
  while (head_ready() && open_count() < config_.max_connections) {
    LanePtr lane = open_lane();
    PendingRequest req = std::move(queue_.front());
    queue_.pop_front();
    issue_on_lane(lane, std::move(req));
  }
  arm_retry_wakeup();
}

void Robot::on_lane_data(const LanePtr& lane) {
  if (finished_) return;
  if (lane->h2) {
    // Everything flows through the framing layer; stream completion and
    // incremental document scanning arrive via the session callbacks.
    lane->h2->receive(lane->conn->read_all());
    return;
  }
  buf::Chain bytes = lane->conn->read_all();
  if (!bytes.empty()) lane->parser.feed(std::move(bytes));

  bool popped_any = false;
  while (auto response = lane->parser.next()) {
    if (lane->outstanding.empty()) break;  // unsolicited data; drop
    PendingRequest pending = std::move(lane->outstanding.front());
    lane->outstanding.pop_front();
    popped_any = true;
    deliver_response(lane, std::move(pending), std::move(*response));
    if (finished_) return;
  }
  // A complete response is "progress": restart (or clear) the per-request
  // deadline. Raw bytes deliberately do NOT restart it — a server that
  // trickles a response forever would otherwise never trip the deadline.
  if (popped_any) arm_request_deadline(lane);
  scan_html_progress(lane);
}

void Robot::deliver_response(const LanePtr& lane, PendingRequest pending,
                             http::Response response) {
  if (config_.per_response_cpu <= 0) {
    handle_response(lane, pending, std::move(response));
    return;
  }
  // Response handling costs client CPU, serialized on the one processor.
  const sim::Time now = host_.event_queue().now();
  const sim::Time start = std::max(now, client_cpu_free_);
  client_cpu_free_ = start + config_.per_response_cpu;
  host_.event_queue().schedule_in(
      client_cpu_free_ - now,
      [this, lane, pending = std::move(pending),
       response = std::move(response)]() mutable {
        if (!finished_) handle_response(lane, pending, std::move(response));
      });
}

void Robot::scan_html_progress(const LanePtr& lane) {
  if (!first_visit_ || finished_) return;
  if (lane->outstanding.empty() || !lane->outstanding.front().is_root) return;
  const http::Response* partial = lane->parser.partial();
  if (partial == nullptr) return;
  scan_partial_body(*partial);
}

void Robot::scan_partial_body(const http::Response& partial) {
  const bool deflated =
      partial.headers.has_token("Content-Encoding", "deflate");
  if (partial.body.size() > html_raw_consumed_) {
    // Walk the chain's contiguous runs past the consumed prefix; no flatten.
    partial.body.slice(html_raw_consumed_)
        .for_each([&](std::span<const std::uint8_t> run) {
          ingest_html_bytes(run, deflated);
        });
    discover_references();
  }
}

void Robot::ingest_html_bytes(std::span<const std::uint8_t> raw,
                              bool deflated) {
  if (stats_.first_html_byte_at == 0 && !raw.empty()) {
    stats_.first_html_byte_at = host_.event_queue().now();
  }
  html_raw_consumed_ += raw.size();
  if (deflated) {
    if (!inflater_) inflater_.emplace(deflate::Inflater::Format::kZlib);
    std::vector<std::uint8_t> out;
    inflater_->feed(raw, out);
    html_text_.append(out.begin(), out.end());
  } else {
    html_text_.append(raw.begin(), raw.end());
  }
}

void Robot::discover_references() {
  if (!config_.follow_embedded) return;
  const auto refs = content::scan_image_references(html_text_);
  bool added = false;
  for (std::size_t i = refs_discovered_; i < refs.size(); ++i) {
    if (pushed_targets_.count(refs[i]) != 0) continue;  // the push IS the fetch
    PendingRequest req;
    req.target = refs[i];
    ++expected_responses_;
    enqueue(std::move(req));
    added = true;
  }
  refs_discovered_ = std::max(refs_discovered_, refs.size());
  if (added) pump();
}

void Robot::handle_response(const LanePtr& lane, const PendingRequest& pending,
                            http::Response response) {
  stats_.body_bytes += response.body.size();
  metrics_.body_bytes.set(static_cast<std::int64_t>(stats_.body_bytes));
  metrics_.request_latency_us.observe(static_cast<std::uint64_t>(
      (host_.event_queue().now() - pending.issued_at) / 1000));

  if (response.status >= 500 && config_.retry_server_errors) {
    // A transient server error: re-issue (with backoff) instead of treating
    // the response as terminal. The retry is a fresh attempt, so it counts
    // against max_attempts like a connection-loss recovery does.
    ++stats_.responses_error;
    PendingRequest retry = pending;
    ++retry.attempts;
    if (retry.attempts >= config_.max_attempts) {
      fail_request(retry, FailureKind::kServerError);
    } else if (!consume_retry_token()) {
      fail_request(retry, FailureKind::kRetryBudgetExhausted);
    } else {
      sim::Time delay = backoff_delay(retry.attempts);
      // An overloaded upstream (or a tripped proxy breaker) tells us when
      // to come back; honoring it beats hammering the shared bottleneck.
      if (const auto ra = response.headers.get("Retry-After")) {
        const long secs = std::strtol(std::string(*ra).c_str(), nullptr, 10);
        if (secs > 0) {
          const sim::Time hinted = sim::seconds(secs);
          if (hinted > delay) {
            delay = hinted;
            ++stats_.retry_after_honored;
          }
        }
      }
      retry.not_before = host_.event_queue().now() + delay;
      queue_.push_back(std::move(retry));
    }
    maybe_finish();
    if (!finished_) pump();
    return;
  }

  ++completed_responses_;
  if (response.status == 200) {
    ++stats_.responses_ok;
  } else if (response.status == 206) {
    ++stats_.responses_partial;
  } else if (response.status == 304) {
    ++stats_.responses_not_modified;
  } else {
    ++stats_.responses_error;
  }
  if (response.status < 400) refund_retry_token();

  const bool deflated =
      response.headers.has_token("Content-Encoding", "deflate");

  if (pending.is_root && first_visit_ && response.status == 200) {
    // Finish ingesting the document (bytes past the last partial scan).
    if (response.body.size() > html_raw_consumed_) {
      response.body.slice(html_raw_consumed_)
          .for_each([&](std::span<const std::uint8_t> run) {
            ingest_html_bytes(run, deflated);
          });
    }
    stats_.html_complete_at = host_.event_queue().now();
    discover_references();
    // The whole document is parsed: the application *knows* no further
    // requests will be generated from it, so flush the tail batch rather
    // than waiting for the 50 ms timer (the paper's explicit-flush insight).
    if (config_.pipelined()) {
      for (const LanePtr& l : lanes_) {
        if (!l->closed && !l->out_buffer.empty()) {
          ++stats_.explicit_flushes;
          flush_lane(l, true);
        }
      }
    }
    CacheEntry entry;
    if (const auto etag = response.headers.get("ETag")) {
      entry.etag = std::string(*etag);
    }
    if (const auto lm = response.headers.get("Last-Modified")) {
      if (const auto t = http::parse_http_date(*lm)) entry.last_modified = *t;
    }
    if (const auto ct = response.headers.get("Content-Type")) {
      entry.content_type = std::string(*ct);
    }
    entry.body.append(buf::Bytes(std::string_view(html_text_)));
    cache_.store(pending.target, std::move(entry));
  } else if (first_visit_ && response.status == 200) {
    if (stats_.first_image_done_at == 0) {
      stats_.first_image_done_at = host_.event_queue().now();
    }
    CacheEntry entry;
    if (const auto etag = response.headers.get("ETag")) {
      entry.etag = std::string(*etag);
    }
    if (const auto lm = response.headers.get("Last-Modified")) {
      if (const auto t = http::parse_http_date(*lm)) entry.last_modified = *t;
    }
    if (const auto ct = response.headers.get("Content-Type")) {
      entry.content_type = std::string(*ct);
    }
    entry.body = std::move(response.body);
    cache_.store(pending.target, std::move(entry));
  }

  // HTTP/1.0 without keep-alive: this lane is done (the server will close;
  // close our half right away and never reuse the lane).
  if (!config_.http11()) {
    const bool keep_alive =
        response.headers.has_token("Connection", "keep-alive");
    if (!keep_alive) {
      lane->conn->shutdown_send();
      lane->closed = true;
      std::erase(lanes_, lane);
    }
  }

  maybe_finish();
  if (!finished_) pump();
}

sim::Time Robot::backoff_delay(unsigned attempts) {
  if (config_.retry_backoff <= 0 || attempts == 0) return 0;
  const unsigned shift = std::min(attempts - 1, 6u);
  sim::Time delay = config_.retry_backoff << shift;
  if (config_.retry_jitter > 0.0) {
    // De-phase clients hit by the same shared fault: without jitter, every
    // victim of a bottleneck flap re-issues on the same tick and the retry
    // wave re-congests the link the moment it heals.
    delay = static_cast<sim::Time>(static_cast<double>(delay) *
                                   retry_rng_.jitter(config_.retry_jitter));
  }
  return std::min(delay, config_.retry_backoff_cap);
}

bool Robot::consume_retry_token() {
  if (config_.retry_budget == 0) return true;
  if (retry_tokens_ == 0) {
    ++stats_.retry_budget_exhausted;
    return false;
  }
  --retry_tokens_;
  ++stats_.retry_tokens_consumed;
  return true;
}

void Robot::refund_retry_token() {
  if (config_.retry_budget == 0) return;
  if (retry_tokens_ < config_.retry_budget) {
    ++retry_tokens_;
    ++stats_.retry_tokens_refunded;
  }
}

bool Robot::lane_has_outstanding(const Lane& lane) const {
  return lane.h2 ? !lane.h2_outstanding.empty() : !lane.outstanding.empty();
}

bool Robot::target_in_flight(const std::string& target) const {
  for (const PendingRequest& r : queue_) {
    if (r.target == target) return true;
  }
  for (const LanePtr& l : lanes_) {
    for (const PendingRequest& r : l->outstanding) {
      if (r.target == target) return true;
    }
    for (const auto& [id, r] : l->h2_outstanding) {
      if (r.target == target) return true;
    }
  }
  return false;
}

void Robot::arm_request_deadline(const LanePtr& lane) {
  if (config_.request_deadline <= 0 || !lane->deadline_timer) return;
  if (lane->closed || !lane_has_outstanding(*lane)) {
    lane->deadline_timer->cancel();
    return;
  }
  std::weak_ptr<Lane> weak = lane;
  lane->deadline_timer->arm(config_.request_deadline, [this, weak] {
    if (auto l = weak.lock(); l && !l->closed) {
      // The head response made no progress for a whole deadline period
      // (e.g. a wedged server holding the connection open). Abort the
      // connection and recover through the usual requeue path.
      l->closed = true;
      ++stats_.request_deadlines_fired;
      l->conn->abort();
      on_lane_closed(l, LaneClose::kDeadline);
    }
  });
}

void Robot::fail_request(const PendingRequest& request, FailureKind kind) {
  ++completed_responses_;
  ++stats_.requests_failed;
  stats_.failures.push_back({request.target, kind, request.attempts});
}

void Robot::on_lane_closed(const LanePtr& lane, LaneClose cause) {
  if (finished_) return;
  lane->flush_timer->cancel();
  if (lane->deadline_timer) lane->deadline_timer->cancel();
  if (cause == LaneClose::kConnectFailure) ++stats_.connect_failures;
  if (cause == LaneClose::kTransportFailure) ++stats_.transport_failures;

  // Unanswered requests (sent but no response) go back on the queue. Only
  // "charged" requests cost an attempt + retry token: a server that serves N
  // requests then closes (e.g. Apache 1.2b2's 5-request limit) makes
  // progress each cycle, so the rest are victims, not failures.
  const sim::Time now = host_.event_queue().now();
  auto requeue_one = [&](PendingRequest req, bool charged) {
    if (!charged) {
      req.from_push = false;  // an interrupted push re-issues as a plain GET
      req.not_before = 0;     // victims re-issue immediately
      queue_.push_back(std::move(req));
      return;
    }
    if (++req.attempts >= config_.max_attempts) {
      ++stats_.responses_error;
      FailureKind kind = FailureKind::kConnectionLost;
      switch (cause) {
        case LaneClose::kConnectFailure:
          kind = FailureKind::kConnectFailure;
          break;
        case LaneClose::kTransportFailure:
          kind = FailureKind::kTransportFailure;
          break;
        case LaneClose::kDeadline:
          kind = FailureKind::kRequestDeadline;
          break;
        case LaneClose::kGraceful:
        case LaneClose::kReset:
          break;
      }
      fail_request(req, kind);
      return;
    }
    if (!consume_retry_token()) {
      fail_request(req, FailureKind::kRetryBudgetExhausted);
      return;
    }
    if (cause == LaneClose::kReset) {
      ++stats_.retries_after_reset;
    } else if (cause == LaneClose::kGraceful) {
      ++stats_.retries_after_close;
    }
    req.not_before = now + backoff_delay(req.attempts);
    queue_.push_back(std::move(req));
  };

  if (lane->h2) {
    // GOAWAY partitions the in-flight streams: ids above the server's
    // last_stream_id were provably never processed, so they retry free of
    // attempt charges; ids at or below it may have consumed server work and
    // are charged like the pipeline head. Without a GOAWAY (pure transport
    // loss) only the lowest open stream is charged, mirroring HTTP/1.x.
    const bool goaway = lane->h2->goaway_received();
    const std::uint32_t last = goaway ? lane->h2->peer_last_stream_id() : 0;
    bool head = true;
    for (auto& [id, req] : lane->h2_outstanding) {
      const bool charged = !req.from_push && (goaway ? id <= last : head);
      head = false;
      requeue_one(std::move(req), charged);
    }
    lane->h2_outstanding.clear();
  } else {
    bool head = true;
    for (PendingRequest& req : lane->outstanding) {
      requeue_one(std::move(req), head);
      head = false;
    }
    lane->outstanding.clear();
  }
  std::erase(lanes_, lane);
  maybe_finish();
  if (!finished_) pump();
}

void Robot::on_page_deadline() {
  if (finished_) return;
  finished_ = true;
  stats_.page_deadline_hit = true;
  stats_.complete = false;
  stats_.finished = host_.event_queue().now();
  metrics_.page_finished_ns.set(stats_.finished);
  retry_timer_.cancel();
  // Everything still unresolved is attributed to the page deadline.
  for (const PendingRequest& req : queue_) {
    ++stats_.requests_failed;
    stats_.failures.push_back(
        {req.target, FailureKind::kPageDeadline, req.attempts});
  }
  queue_.clear();
  for (const LanePtr& lane : lanes_) {
    lane->flush_timer->cancel();
    if (lane->deadline_timer) lane->deadline_timer->cancel();
    for (const PendingRequest& req : lane->outstanding) {
      ++stats_.requests_failed;
      stats_.failures.push_back(
          {req.target, FailureKind::kPageDeadline, req.attempts});
    }
    lane->outstanding.clear();
    for (const auto& [id, req] : lane->h2_outstanding) {
      ++stats_.requests_failed;
      stats_.failures.push_back(
          {req.target, FailureKind::kPageDeadline, req.attempts});
    }
    lane->h2_outstanding.clear();
    if (!lane->closed) {
      lane->closed = true;
      lane->conn->abort();
    }
  }
  lanes_.clear();
  if (done_) done_();
}

void Robot::maybe_finish() {
  if (finished_) return;
  if (completed_responses_ < expected_responses_ || !queue_.empty()) return;
  finished_ = true;
  stats_.complete = (stats_.requests_failed == 0);
  stats_.finished = host_.event_queue().now();
  metrics_.page_finished_ns.set(stats_.finished);
  retry_timer_.cancel();
  page_timer_.cancel();
  for (const LanePtr& lane : lanes_) {
    lane->flush_timer->cancel();
    if (lane->deadline_timer) lane->deadline_timer->cancel();
    if (!lane->closed) {
      // Announce a clean end of session before the FIN so the server's
      // forensics see an orderly GOAWAY rather than a bare half-close.
      if (lane->h2) lane->h2->send_goaway(h2::ErrorCode::kNoError);
      lane->conn->shutdown_send();
    }
  }
  if (done_) done_();
}

}  // namespace hsim::client
