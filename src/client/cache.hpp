// Client-side document cache with HTTP/1.1 validators.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "buf/bytes.hpp"
#include "http/date.hpp"

namespace hsim::client {

struct CacheEntry {
  std::string etag;
  http::UnixSeconds last_modified = 0;
  std::string content_type;
  // Shared slices of the response that filled the entry — caching a body
  // never duplicates the payload.
  buf::Chain body;
};

class Cache {
 public:
  void store(const std::string& path, CacheEntry entry) {
    entries_[path] = std::move(entry);
  }
  const CacheEntry* find(const std::string& path) const {
    const auto it = entries_.find(path);
    return it == entries_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Paths in insertion-independent (sorted) order, root first if present.
  std::vector<std::string> paths() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [path, entry] : entries_) out.push_back(path);
    return out;
  }

 private:
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace hsim::client
