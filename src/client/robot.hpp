// The measurement client ("robot").
//
// Reproduces the libwww robot's four modes from the paper:
//   - HTTP/1.0 with up to 4 parallel short connections (one per request);
//   - HTTP/1.1 persistent, requests serialized on one connection;
//   - HTTP/1.1 pipelined: requests buffered (1024 B) with a flush timer and
//     an explicit application-level flush after the HTML request;
//   - HTTP/1.1 pipelined + "Accept-Encoding: deflate" with streaming
//     decompression.
// In every mode the client scans arriving HTML incrementally and issues
// image requests as soon as references are discovered.
//
// Browser emulation (Tables 10/11) reuses the same machinery with different
// header profiles, connection strategies and revalidation styles.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "client/cache.hpp"
#include "client/profile.hpp"
#include "deflate/inflate.hpp"
#include "h2/session.hpp"
#include "http/parser.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "tcp/host.hpp"

namespace hsim::client {

enum class ProtocolMode {
  kHttp10Parallel,
  kHttp11Persistent,
  kHttp11Pipelined,
  kHttp11PipelinedCompressed,
  /// HTTP/2-style multiplexed framing: every request is a concurrent stream
  /// on one connection, with server push replacing reference discovery.
  kH2,
};
std::string_view to_string(ProtocolMode mode);

/// Why a request (or the whole page retrieval) permanently failed. Structured
/// failure attribution: chaos tests assert the *responsible* fault surfaced,
/// rather than a generic error or — worse — a hang.
enum class FailureKind {
  kConnectFailure,    // TCP connect timed out (SYN retries exhausted)
  kTransportFailure,  // established connection gave up retransmitting
  kRequestDeadline,   // per-request deadline expired (e.g. stalled server)
  kPageDeadline,      // whole-page deadline expired
  kServerError,       // 5xx responses persisted through every retry
  kConnectionLost,    // connection kept closing/resetting under us
  kRetryBudgetExhausted,  // retry token bucket ran dry (anti-storm hard stop)
};
std::string_view to_string(FailureKind kind);

/// One permanently-failed request, with its retry count.
struct RequestFailure {
  std::string target;
  FailureKind kind = FailureKind::kConnectionLost;
  unsigned attempts = 0;
};

/// How a cache-validation visit expresses its requests.
enum class RevalidationStyle {
  /// Full HTTP/1.1 style: conditional GET with If-None-Match on everything.
  kConditionalGet,
  /// The old HTTP/1.0 robot: unconditional GET for the HTML plus HEAD for
  /// every image (transfers the whole HTML body again).
  kGetPlusHead,
  /// MSIE 4.0b1's beta behaviour: unconditional GETs (refetches bodies).
  kUnconditionalGet,
};

struct ClientConfig {
  ProtocolMode mode = ProtocolMode::kHttp11Pipelined;
  unsigned max_connections = 1;  // 4 in HTTP/1.0 mode (Navigator default)
  std::size_t pipeline_buffer = 1024;
  sim::Time flush_timeout = sim::milliseconds(50);
  /// Application-level explicit flush after issuing the first (HTML)
  /// request — the "Buffer Tuning" optimisation.
  bool explicit_first_flush = true;
  bool nodelay = true;
  RevalidationStyle revalidation = RevalidationStyle::kConditionalGet;
  HeaderProfile profile = robot_profile();
  std::string host_header = "www.microscape.test";
  tcp::TcpOptions tcp;

  /// Prefer If-None-Match entity tags for conditional requests; false falls
  /// back to If-Modified-Since dates (Navigator's HTTP/1.0 behaviour).
  bool use_etags = true;

  /// Fetch embedded images discovered in the HTML. Disabled for experiments
  /// that retrieve the document alone (the paper's §8.2.1 modem test).
  bool follow_embedded = true;

  /// "Poor man's multiplexing" (paper §"Range Requests and Validation"):
  /// revalidation requests combine the cache validator with
  /// `Range: bytes=0-(N-1)`, so an object that *changed* returns only its
  /// first N bytes (enough for image metadata) instead of monopolizing the
  /// connection with a full transfer.
  bool validate_with_ranges = false;
  std::size_t range_prefix_bytes = 1360;

  /// Client CPU consumed per response (parsing plus cache bookkeeping).
  /// The paper notes libwww 5.1's two-files-per-object persistent cache
  /// "became a performance bottleneck in our HTTP/1.1 tests"; the old
  /// HTTP/1.0 robot had no persistent cache and only pays parse cost.
  sim::Time per_response_cpu = sim::milliseconds(5);

  // ---- Failure recovery --------------------------------------------------
  /// A request is abandoned (structured failure) after this many attempts.
  unsigned max_attempts = 5;

  /// Abort a connection whose next response has not completed within this
  /// time (0 = no deadline). This is what rescues the client from a server
  /// that wedges mid-response without closing.
  sim::Time request_deadline = 0;

  /// Give up on the whole retrieval after this long (0 = no deadline).
  /// Expiry reports a structured kPageDeadline failure; it never hangs.
  sim::Time page_deadline = 0;

  /// Exponential backoff between re-issues of a failed request: attempt k
  /// waits retry_backoff * 2^(k-1), capped at retry_backoff_cap. 0 = retry
  /// immediately (the pre-fault-injection behaviour).
  sim::Time retry_backoff = 0;
  sim::Time retry_backoff_cap = sim::seconds(10);

  /// Re-issue requests answered with 5xx (bounded by max_attempts). Off by
  /// default: the paper's robot treated errors as terminal.
  bool retry_server_errors = false;

  // ---- Anti-storm recovery -----------------------------------------------
  /// Per-visit retry token bucket: every charged retry (head-of-lane
  /// recovery or 5xx re-issue) consumes one token; each successful response
  /// refunds one (never past the budget). A retry attempted with an empty
  /// bucket hard-stops the request with kRetryBudgetExhausted instead of
  /// joining a synchronized retry storm. 0 = unlimited (budget disabled).
  unsigned retry_budget = 0;

  /// Multiplicative jitter on backoff_delay(): each wait is scaled by
  /// U[1-j, 1+j] drawn from this client's own seeded stream, de-phasing
  /// clients whose connections were killed by the same shared fault.
  /// 0 = deterministic exponential backoff (the legacy behaviour).
  double retry_jitter = 0.0;
  /// Seed for the jitter stream; give each client a distinct value (the
  /// harness derives one per client from the master seed).
  std::uint64_t retry_jitter_seed = 0;

  // ---- HTTP/2-style framing ----------------------------------------------
  /// Accept server pushes on first visits (advertised via SETTINGS
  /// ENABLE_PUSH; only meaningful in kH2 mode).
  bool h2_enable_push = true;
  /// Per-stream receive window advertised to the server.
  std::uint32_t h2_initial_window = 65535;

  bool wants_deflate() const {
    return mode == ProtocolMode::kHttp11PipelinedCompressed;
  }
  bool pipelined() const {
    return mode == ProtocolMode::kHttp11Pipelined ||
           mode == ProtocolMode::kHttp11PipelinedCompressed;
  }
  bool h2() const { return mode == ProtocolMode::kH2; }
  bool http11() const { return mode != ProtocolMode::kHttp10Parallel; }
};

struct RobotStats {
  std::size_t requests_sent = 0;
  std::size_t responses_ok = 0;        // 200
  std::size_t responses_partial = 0;   // 206 (range validation)
  std::size_t responses_not_modified = 0;
  std::size_t responses_error = 0;     // 4xx/5xx
  std::size_t retries = 0;             // re-issued after connection loss
  /// Partition of recovery re-issues by what killed the connection — the
  /// paper's pipelining-close pitfall shows up as retries_after_reset.
  std::size_t retries_after_reset = 0;   // lane died by RST
  std::size_t retries_after_close = 0;   // lane closed gracefully (FIN)
  std::size_t resets_seen = 0;
  std::size_t explicit_flushes = 0;
  std::size_t timer_flushes = 0;
  std::size_t size_flushes = 0;
  // ---- HTTP/2-style framing (kH2 mode only) ------------------------------
  std::size_t pushes_promised = 0;  // PUSH_PROMISE frames seen
  std::size_t pushes_accepted = 0;  // promises admitted to the push cache
  std::size_t pushes_rejected = 0;  // promises answered with RST(CANCEL)
  std::size_t h2_goaways_seen = 0;
  std::uint64_t body_bytes = 0;
  sim::Time started = 0;
  sim::Time finished = 0;
  /// True iff every request resolved successfully (no permanent failures,
  /// no page-deadline expiry).
  bool complete = false;

  // ---- Failure accounting ------------------------------------------------
  std::size_t requests_failed = 0;        // permanently abandoned
  std::size_t connect_failures = 0;       // TCP connect give-ups observed
  std::size_t transport_failures = 0;     // established-connection give-ups
  std::size_t request_deadlines_fired = 0;
  bool page_deadline_hit = false;
  // Retry-budget bookkeeping (all zero when ClientConfig::retry_budget == 0).
  std::size_t retry_tokens_consumed = 0;
  std::size_t retry_tokens_refunded = 0;
  std::size_t retry_budget_exhausted = 0;  // retries refused on empty bucket
  /// 503 responses whose Retry-After delayed the re-issue beyond the
  /// client's own backoff.
  std::size_t retry_after_honored = 0;
  /// One entry per permanently-failed request, with the responsible fault.
  std::vector<RequestFailure> failures;

  // Perceived-performance timestamps (0 = never happened). The paper leaves
  // time-to-render as future work; these are the raw ingredients.
  sim::Time first_html_byte_at = 0;   // first decoded document byte
  sim::Time html_complete_at = 0;     // whole document decoded
  sim::Time first_image_done_at = 0;  // first embedded object fetched

  double elapsed_seconds() const { return sim::to_seconds(finished - started); }
  double seconds_to_first_html() const {
    return sim::to_seconds(first_html_byte_at - started);
  }
  double seconds_to_html_complete() const {
    return sim::to_seconds(html_complete_at - started);
  }
};

class Robot {
 public:
  using DoneCallback = std::function<void()>;

  Robot(tcp::Host& host, net::IpAddr server_addr, net::Port server_port,
        ClientConfig config);
  ~Robot();

  /// First-time visit: fetch `root`, discover embedded images incrementally,
  /// fetch them all, populate the cache.
  void start_first_visit(const std::string& root, DoneCallback done);

  /// Cache-validation visit: revalidate the root and every cached entry
  /// (requires a populated cache, e.g. from a prior first visit).
  void start_revalidation(const std::string& root, DoneCallback done);

  Cache& cache() { return cache_; }
  const RobotStats& stats() const { return stats_; }
  const ClientConfig& config() const { return config_; }

 private:
  struct PendingRequest {
    std::string target;
    http::Method method = http::Method::kGet;
    bool conditional = false;
    bool is_root = false;
    unsigned attempts = 0;
    /// True for a request the robot never issued itself: it tracks an
    /// accepted h2 server push. Never charged an attempt on lane loss.
    bool from_push = false;
    /// Earliest time this request may be (re)issued — retry backoff.
    sim::Time not_before = 0;
    /// When the (latest attempt of the) request hit the wire; feeds the
    /// client.request_latency_us histogram.
    sim::Time issued_at = 0;
  };

  /// Why a lane went away; drives retry accounting and failure attribution.
  enum class LaneClose {
    kGraceful,          // FIN / orderly close
    kReset,             // RST
    kConnectFailure,    // tcp on_failed before the handshake completed
    kTransportFailure,  // tcp on_failed after establishment
    kDeadline,          // our own request deadline aborted it
  };

  /// One TCP connection and its in-flight request queue.
  struct Lane {
    tcp::ConnectionPtr conn;
    http::ResponseParser parser;
    std::deque<PendingRequest> outstanding;
    buf::Chain out_buffer;
    buf::Chain out_unsent;
    bool connected = false;
    bool closed = false;
    std::unique_ptr<sim::Timer> flush_timer;
    /// Per-request deadline for the response at the head of `outstanding`.
    std::unique_ptr<sim::Timer> deadline_timer;
    // ---- HTTP/2-style framing ---------------------------------------------
    /// Non-null in kH2 mode: the multiplexed session replacing the pipeline
    /// queue. Requests live in `h2_outstanding` keyed by stream id instead
    /// of `outstanding`.
    std::unique_ptr<h2::Session> h2;
    std::map<std::uint32_t, PendingRequest> h2_outstanding;
  };
  using LanePtr = std::shared_ptr<Lane>;

  void begin(DoneCallback done);
  void enqueue(PendingRequest request);
  void pump();                        // assign queued requests to lanes
  LanePtr open_lane();
  void issue_on_lane(const LanePtr& lane, PendingRequest request);
  http::Request build_request(const PendingRequest& pending) const;
  void flush_lane(const LanePtr& lane, bool explicit_flush);
  void pump_lane_output(const LanePtr& lane);

  void on_lane_data(const LanePtr& lane);
  void on_lane_closed(const LanePtr& lane, LaneClose cause);
  /// Routes a complete response through the serialized client CPU before
  /// handle_response (shared by the HTTP/1.x parser loop and h2 streams).
  void deliver_response(const LanePtr& lane, PendingRequest pending,
                        http::Response response);
  void handle_response(const LanePtr& lane, const PendingRequest& pending,
                       http::Response response);
  void attach_h2_session(const LanePtr& lane);
  bool lane_has_outstanding(const Lane& lane) const;
  /// True when `target` is queued or riding any lane (push dedup).
  bool target_in_flight(const std::string& target) const;
  sim::Time backoff_delay(unsigned attempts);
  /// Takes one retry token (true = retry may proceed). With the budget
  /// disabled always true; on an empty bucket counts the exhaustion and
  /// returns false.
  bool consume_retry_token();
  /// Returns one token on success, never exceeding the configured budget.
  void refund_retry_token();
  void arm_request_deadline(const LanePtr& lane);
  void fail_request(const PendingRequest& request, FailureKind kind);
  void on_page_deadline();
  void scan_html_progress(const LanePtr& lane);
  void scan_partial_body(const http::Response& partial);
  void ingest_html_bytes(std::span<const std::uint8_t> raw, bool deflated);
  void discover_references();
  void maybe_finish();

  tcp::Host& host_;
  net::IpAddr server_addr_;
  net::Port server_port_;
  ClientConfig config_;
  Cache cache_;
  RobotStats stats_;
  DoneCallback done_;
  /// Wakes pump() once the head-of-queue retry backoff elapses.
  sim::Timer retry_timer_;
  sim::Timer page_timer_;
  /// Retry tokens remaining this visit (see ClientConfig::retry_budget).
  unsigned retry_tokens_ = 0;
  /// Per-client backoff jitter stream (see ClientConfig::retry_jitter).
  sim::Rng retry_rng_;

  std::deque<PendingRequest> queue_;  // not yet assigned to a lane
  std::vector<LanePtr> lanes_;
  std::size_t expected_responses_ = 0;
  std::size_t completed_responses_ = 0;
  bool first_request_issued_ = false;
  bool finished_ = false;

  // Incremental HTML handling (first visit).
  std::string root_target_;
  bool first_visit_ = false;
  std::string html_text_;            // decoded document prefix
  std::size_t html_raw_consumed_ = 0;  // raw body bytes already ingested
  std::size_t refs_discovered_ = 0;
  /// Targets covered by accepted h2 pushes: reference discovery skips these
  /// (the push IS the fetch), and duplicate promises are rejected.
  std::set<std::string> pushed_targets_;
  std::optional<deflate::Inflater> inflater_;
  std::string html_content_type_;

  /// Single client CPU: response processing serializes (models the libwww
  /// cache overhead the paper describes).
  sim::Time client_cpu_free_ = 0;

  /// client.* registry metrics. The page gauges mirror stats_.started /
  /// stats_.finished so harness results can be rebuilt from the registry.
  struct Metrics {
    obs::CounterHandle requests_sent, retries;
    obs::GaugeHandle page_started_ns, page_finished_ns, body_bytes;
    obs::HistogramHandle request_latency_us;
    static Metrics bind();
  };
  Metrics metrics_ = Metrics::bind();
};

}  // namespace hsim::client
