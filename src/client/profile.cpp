#include "client/profile.hpp"

namespace hsim::client {

HeaderProfile robot_profile() {
  HeaderProfile p;
  p.name = "libwww-robot";
  p.user_agent = "libwww-robot/5.1";
  p.extra_headers = {
      {"Accept", "image/gif, image/png, text/html, */*"},
      {"Accept-Language", "en"},
      {"Accept-Charset", "iso-8859-1,*"},
  };
  // With these headers a GET for a Microscape image is ~190 bytes — the
  // average request size the paper reports for the tuned robot.
  return p;
}

HeaderProfile netscape_profile() {
  HeaderProfile p;
  p.name = "Navigator-4.0b5";
  p.user_agent = "Mozilla/4.0b5 [en] (WinNT; I)";
  p.extra_headers = {
      {"Accept", "image/gif, image/x-xbitmap, image/jpeg, image/pjpeg, */*"},
      {"Accept-Language", "en"},
      {"Accept-Charset", "iso-8859-1,*,utf-8"},
  };
  p.send_keep_alive = true;
  return p;
}

HeaderProfile msie_profile() {
  HeaderProfile p;
  p.name = "MSIE-4.0b1";
  p.user_agent = "Mozilla/4.0 (compatible; MSIE 4.0b1; Windows NT)";
  p.extra_headers = {
      {"Accept",
       "image/gif, image/x-xbitmap, image/jpeg, image/pjpeg, "
       "application/vnd.ms-excel, application/msword, "
       "application/vnd.ms-powerpoint, */*"},
      {"Accept-Language", "en-us"},
      {"UA-pixels", "1024x768"},
      {"UA-color", "color8"},
      {"UA-OS", "Windows NT"},
      {"UA-CPU", "x86"},
  };
  return p;
}

}  // namespace hsim::client
