// Client header profiles.
//
// The libwww robot is "very careful not to generate unnecessary headers"
// (~190 bytes per request); the commercial browsers of Tables 10/11 send
// considerably more header bytes and use different connection and
// revalidation strategies.
#pragma once

#include <string>
#include <vector>

namespace hsim::client {

struct HeaderProfile {
  std::string name;
  std::string user_agent;
  /// Static headers appended to every request (Accept lines etc.).
  std::vector<std::pair<std::string, std::string>> extra_headers;
  /// HTTP/1.0 browsers that ask for persistent connections.
  bool send_keep_alive = false;
};

/// libwww robot 5.1: minimal headers.
HeaderProfile robot_profile();

/// Netscape Navigator 4.0b5: HTTP/1.0 + Keep-Alive, 4 connections, moderate
/// header verbosity, date-based revalidation.
HeaderProfile netscape_profile();

/// MS Internet Explorer 4.0b1: HTTP/1.1, verbose headers; its beta
/// revalidated images without conditional headers on cache-validate visits
/// (the paper's Table 10 shows it re-fetching far more than Navigator).
HeaderProfile msie_profile();

}  // namespace hsim::client
