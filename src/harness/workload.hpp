// Many-client workload driver.
//
// The paper measured one robot against one server; its conclusions are about
// what happens when *everyone* switches to HTTP/1.1. This driver instantiates
// N independent clients — each with its own tcp::Host, access link and Rng
// stream derived from a master seed — in front of a single server, starts
// them with a Poisson or fixed-interval arrival process, and collects
// per-client completion times, failure attribution and the aggregate packet
// summary at the bottleneck. Everything is deterministic for a given master
// seed: two runs produce identical statistics.
//
// Two topologies are supported:
//
//   kStar (legacy, byte-exact with pre-topology builds): a funnel/fan-out
//   pair aggregates the per-client access links onto one bottleneck link
//   pair whose queueing is the link's own drop-tail.
//
//     client 0 ── access link ──┐
//     client 1 ── access link ──┼── bottleneck link ── server
//     ...                       │   (tap: TraceSummarizer)
//     client N ── access link ──┘
//
//   kDumbbell (topo subsystem): two routers bracket a shared bottleneck
//   link pair carrying a pluggable queue discipline (DropTail budgets or
//   RED) per direction, so N clients genuinely contend — see
//   topo/topology.hpp. Per-queue depth/drop/latency stats surface in the
//   run's registry (topo.queue.*) and in WorkloadResult::queues.
//
//     client 0 ── access ──┐                    ┌── server
//     client 1 ── access ──┤ gate ══ qdisc ══ core
//     client N ── access ──┘    bottleneck pair
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "client/robot.hpp"
#include "content/microscape.hpp"
#include "harness/network.hpp"
#include "net/trace.hpp"
#include "obs/metrics.hpp"
#include "server/config.hpp"
#include "server/server.hpp"
#include "tcp/host.hpp"
#include "topo/queue_disc.hpp"
#include "topo/topology.hpp"

namespace hsim::harness {

enum class ArrivalProcess {
  kFixedInterval,  // client i starts at exactly i * mean_interarrival
  kPoisson,        // exponential inter-arrival gaps with the given mean
};

enum class TopologyKind {
  kStar,      // legacy funnel/fan-out; byte-exact with pre-topology builds
  kDumbbell,  // routers + queue disciplines around a shared bottleneck
  /// Dumbbell with a redundant bottleneck pair and deterministic
  /// forwarding-table failover (topo::TopologyBuilder::dumbbell_redundant).
  kDumbbellRedundant,
};

struct WorkloadConfig {
  unsigned num_clients = 10;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  sim::Time mean_interarrival = sim::milliseconds(50);

  /// Per-client access network (bandwidth/RTT/queue of the client's own leg).
  NetworkProfile access = lan_profile();

  /// Optional edit of the access channel after the profile produced it but
  /// before any link is built — the same fault-injection hook as
  /// ExperimentSpec::mutate_channel, so every chaos regime can ride any
  /// topology. Null = profile used as-is (the legacy byte-exact path).
  std::function<void(net::ChannelConfig&)> mutate_access;

  /// Time-varying profile overlaid on every client's access channel (netem
  /// subsystem): "flat", a built-in name or a profiles/*.netem file path;
  /// empty consults HSIM_PROFILE, still empty = static access links.
  /// Applied after mutate_access — chaos regimes compose with any profile.
  std::string profile;

  /// Which shape carries the traffic. kStar keeps the legacy funnel path
  /// (byte-exact with pre-topology builds); kDumbbell routes every client
  /// through a shared router/queue-discipline bottleneck (topo subsystem).
  TopologyKind topology = TopologyKind::kStar;

  /// The shared bottleneck between the aggregation point and the server.
  std::int64_t bottleneck_bandwidth_bps = 10'000'000;
  sim::Time bottleneck_delay = sim::milliseconds(10);
  std::size_t bottleneck_queue_packets = 256;

  /// Dumbbell only: the per-direction bottleneck queue discipline (kind,
  /// byte budget, RED parameters). The *packet* budget always comes from
  /// bottleneck_queue_packets above, so the one knob governs the physical
  /// buffer in both topologies.
  topo::QueueConfig bottleneck_queue;

  /// Dumbbell only: edit of the bottleneck link config(s) before the links
  /// are built (topo::BottleneckSpec::mutate_link) — how fault timelines arm
  /// outage windows on the shared link. In the redundant dumbbell this hits
  /// the primary pair only.
  std::function<void(net::LinkConfig&)> mutate_bottleneck;

  /// kDumbbellRedundant only: failover detection delay.
  topo::FailoverSpec failover;

  /// Dumbbell shapes only: called with the freshly-built topology and the
  /// event queue before any client starts. Fault timelines use it to grab
  /// router pointers and schedule crashes / wedges; oracles to capture the
  /// structures they will walk.
  std::function<void(topo::Topology&, sim::EventQueue&)> on_topology;

  /// When both are set, on_epoch fires every `epoch` of simulated time up to
  /// the horizon (first firing at t = epoch). The soak harness runs its
  /// invariant oracles here.
  sim::Time epoch = 0;
  std::function<void()> on_epoch;

  /// Dumbbell only: when set, every packet crossing a router is recorded
  /// here with the router id and the egress queue depth at enqueue
  /// (multi-hop trace; intended for small N — it keeps every record).
  net::PacketTrace* hop_trace = nullptr;

  server::ServerConfig server;
  client::ClientConfig client;

  /// When set, overrides the congestion-control module on BOTH sides
  /// (client template and server TcpOptions). Unset keeps whatever the
  /// embedded configs carry — i.e. Reno unless a caller changed it — so the
  /// legacy byte-exact paths are untouched.
  std::optional<tcp::CcKind> cc;

  std::uint64_t master_seed = 1;
  std::string root = "/index.html";

  /// Hard horizon for the measured phase; generous, only guards stalls.
  sim::Time horizon = sim::seconds(600);
  /// Extra time after the horizon for FIN exchanges / TIME_WAIT to drain,
  /// so the leak check below is meaningful.
  sim::Time drain = sim::seconds(120);

  /// Byte-exact per-client cache verification against the source site
  /// (scale tests want it; the 1000-client bench skips the O(N·site) cost).
  bool verify_cache = false;

  /// Optional: handed the run's metrics registry before teardown. Sharded
  /// drivers merge shard registries through Registry::merge_from here.
  obs::MetricsSink* metrics_sink = nullptr;

  /// Parallel engine selector. 0 (default) = the classic single-queue driver,
  /// byte-exact with every pre-sharding build; the HSIM_THREADS environment
  /// variable may promote it at runtime. >= 1 = the host-sharded engine
  /// (sim/shard.hpp) with that many worker threads. The shard partition is
  /// fixed by `shards` (not by `threads`), so every threads >= 1 value
  /// produces byte-identical results — the thread count is purely a
  /// performance knob. Falls back to the classic driver when the topology's
  /// minimum cross-shard latency is below 1 ns (no usable lookahead).
  unsigned threads = 0;
  /// Sharded runs only: how many shards to partition the hosts into
  /// (shard 0 = server + bottleneck, clients round-robin over the rest).
  /// 0 = auto (min(num_clients, 8) client shards). Changing the shard count
  /// changes cross-shard event interleaving, so comparisons must hold it
  /// fixed; `threads` never affects results, `shards` may.
  std::size_t shards = 0;
};

struct ClientOutcome {
  unsigned id = 0;
  sim::Time arrival = 0;   // when this client began its visit
  bool resolved = false;   // the robot reached a verdict (done callback fired)
  bool byte_exact = false; // only meaningful with WorkloadConfig::verify_cache
  std::size_t leaked_connections = 0;  // client-host conns open after drain
  client::RobotStats stats;            // includes failure attribution

  bool complete() const { return stats.complete; }
  double page_seconds() const { return stats.elapsed_seconds(); }
};

/// One bottleneck queue's identity and counters, copied out of the topology
/// before teardown (dumbbell runs only).
struct QueueSummary {
  std::string label;  // e.g. "bn.up"
  std::string kind;   // "DropTail" / "RED"
  topo::QueueStats stats;
};

struct WorkloadResult {
  std::vector<ClientOutcome> clients;

  /// Plain-value copy of the run's metrics registry (includes the
  /// workload.page_ms histogram of completed-client page times).
  obs::Snapshot metrics;

  /// Aggregate packet summary at the shared bottleneck (both directions).
  net::TraceSummary bottleneck;
  std::uint64_t bottleneck_syns = 0;        // client SYNs crossing it
  std::uint64_t bottleneck_queue_drops = 0; // queue losses, both directions

  /// Total discrete events the queue executed (run + drain). Deterministic
  /// for a fixed config/seed; the denominator for events/sec perf numbers.
  std::size_t events_executed = 0;

  /// Total TCP retransmissions across every host (registry tcp.retransmits).
  std::uint64_t tcp_retransmits = 0;

  /// Dumbbell runs: the bottleneck queue disciplines' counters ("bn.up",
  /// "bn.down"). Empty for star runs.
  std::vector<QueueSummary> queues;

  server::ServerStats server;
  tcp::ListenerStats listener;              // backlog accounting at the server
  std::uint64_t server_connections_total = 0;  // churn: conns ever created
  std::size_t server_max_open = 0;
  std::size_t server_open_after_drain = 0;     // leak check

  unsigned completed() const;   // clients that finished byte-complete
  unsigned failed() const;      // clients with at least one permanent failure
  bool all_resolved() const;    // no client hung

  /// Page times of the clients that completed, in client order.
  std::vector<double> completed_page_seconds() const;
  double median_page_seconds() const;
  double p95_page_seconds() const;

  /// Jain's fairness index over completed page times:
  /// (Σx)² / (n·Σx²) — 1.0 is perfectly fair, 1/n is maximally unfair.
  double jain_fairness_index() const;
};

/// The seeding scheme: splitmix64 over (master ^ salt). Per-client streams
/// use salt = kClientSeedSalt + client id, so client i's randomness does not
/// depend on N or on any other client's draws.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t salt);
inline constexpr std::uint64_t kArrivalSeedSalt = 0xA881;
inline constexpr std::uint64_t kServerSeedSalt = 0x5E12;
inline constexpr std::uint64_t kClientSeedSalt = 0xC000;
/// Dumbbell topology stream (router-egress links, RED drop draws). A
/// separate salt keeps the star path's draw order untouched.
inline constexpr std::uint64_t kTopoSeedSalt = 0x70B0;
/// Per-client retry-jitter stream (client i gets salt + i). Only consulted
/// when ClientConfig::retry_jitter > 0, so it is invisible to legacy runs.
inline constexpr std::uint64_t kRetrySeedSalt = 0x4E77;

WorkloadResult run_workload(const WorkloadConfig& config,
                            const content::MicroscapeSite& site);

}  // namespace hsim::harness
