// Many-client workload driver.
//
// The paper measured one robot against one server; its conclusions are about
// what happens when *everyone* switches to HTTP/1.1. This driver instantiates
// N independent clients — each with its own tcp::Host, access link and Rng
// stream derived from a master seed — behind one shared bottleneck link into
// a single server, starts them with a Poisson or fixed-interval arrival
// process, and collects per-client completion times, failure attribution and
// the aggregate packet summary at the bottleneck. Everything is deterministic
// for a given master seed: two runs produce identical statistics.
//
//   client 0 ── access link ──┐
//   client 1 ── access link ──┼── bottleneck link ── server
//   ...                       │   (tap: TraceSummarizer)
//   client N ── access link ──┘
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/robot.hpp"
#include "content/microscape.hpp"
#include "harness/network.hpp"
#include "net/trace.hpp"
#include "obs/metrics.hpp"
#include "server/config.hpp"
#include "server/server.hpp"
#include "tcp/host.hpp"

namespace hsim::harness {

enum class ArrivalProcess {
  kFixedInterval,  // client i starts at exactly i * mean_interarrival
  kPoisson,        // exponential inter-arrival gaps with the given mean
};

struct WorkloadConfig {
  unsigned num_clients = 10;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  sim::Time mean_interarrival = sim::milliseconds(50);

  /// Per-client access network (bandwidth/RTT/queue of the client's own leg).
  NetworkProfile access = lan_profile();

  /// The shared bottleneck between the aggregation point and the server.
  std::int64_t bottleneck_bandwidth_bps = 10'000'000;
  sim::Time bottleneck_delay = sim::milliseconds(10);
  std::size_t bottleneck_queue_packets = 256;

  server::ServerConfig server;
  client::ClientConfig client;

  std::uint64_t master_seed = 1;
  std::string root = "/index.html";

  /// Hard horizon for the measured phase; generous, only guards stalls.
  sim::Time horizon = sim::seconds(600);
  /// Extra time after the horizon for FIN exchanges / TIME_WAIT to drain,
  /// so the leak check below is meaningful.
  sim::Time drain = sim::seconds(120);

  /// Byte-exact per-client cache verification against the source site
  /// (scale tests want it; the 1000-client bench skips the O(N·site) cost).
  bool verify_cache = false;

  /// Optional: handed the run's metrics registry before teardown. Sharded
  /// drivers merge shard registries through Registry::merge_from here.
  obs::MetricsSink* metrics_sink = nullptr;
};

struct ClientOutcome {
  unsigned id = 0;
  sim::Time arrival = 0;   // when this client began its visit
  bool resolved = false;   // the robot reached a verdict (done callback fired)
  bool byte_exact = false; // only meaningful with WorkloadConfig::verify_cache
  std::size_t leaked_connections = 0;  // client-host conns open after drain
  client::RobotStats stats;            // includes failure attribution

  bool complete() const { return stats.complete; }
  double page_seconds() const { return stats.elapsed_seconds(); }
};

struct WorkloadResult {
  std::vector<ClientOutcome> clients;

  /// Plain-value copy of the run's metrics registry (includes the
  /// workload.page_ms histogram of completed-client page times).
  obs::Snapshot metrics;

  /// Aggregate packet summary at the shared bottleneck (both directions).
  net::TraceSummary bottleneck;
  std::uint64_t bottleneck_syns = 0;        // client SYNs crossing it
  std::uint64_t bottleneck_queue_drops = 0; // drop-tail losses, both directions

  server::ServerStats server;
  tcp::ListenerStats listener;              // backlog accounting at the server
  std::uint64_t server_connections_total = 0;  // churn: conns ever created
  std::size_t server_max_open = 0;
  std::size_t server_open_after_drain = 0;     // leak check

  unsigned completed() const;   // clients that finished byte-complete
  unsigned failed() const;      // clients with at least one permanent failure
  bool all_resolved() const;    // no client hung

  /// Page times of the clients that completed, in client order.
  std::vector<double> completed_page_seconds() const;
  double median_page_seconds() const;
  double p95_page_seconds() const;

  /// Jain's fairness index over completed page times:
  /// (Σx)² / (n·Σx²) — 1.0 is perfectly fair, 1/n is maximally unfair.
  double jain_fairness_index() const;
};

/// The seeding scheme: splitmix64 over (master ^ salt). Per-client streams
/// use salt = kClientSeedSalt + client id, so client i's randomness does not
/// depend on N or on any other client's draws.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t salt);
inline constexpr std::uint64_t kArrivalSeedSalt = 0xA881;
inline constexpr std::uint64_t kServerSeedSalt = 0x5E12;
inline constexpr std::uint64_t kClientSeedSalt = 0xC000;

WorkloadResult run_workload(const WorkloadConfig& config,
                            const content::MicroscapeSite& site);

}  // namespace hsim::harness
