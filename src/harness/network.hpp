// The paper's three network environments (Table 1).
#pragma once

#include <string>

#include "net/channel.hpp"
#include "sim/time.hpp"

namespace hsim::harness {

struct NetworkProfile {
  std::string name;
  std::int64_t bandwidth_bps = 0;
  sim::Time rtt = 0;
  std::size_t queue_limit = 64;
  double delay_jitter = 0.02;
  /// Receive window the client host uses on this network (the paper's PPP
  /// client was Windows NT 4.0, whose default window of 8760 bytes keeps the
  /// modem queue from overflowing; the UNIX workstations used ~16 KB).
  std::uint32_t client_recv_buffer = 16384;

  net::ChannelConfig channel_config() const {
    return net::ChannelConfig::symmetric(bandwidth_bps, rtt, queue_limit,
                                         delay_jitter);
  }
};

/// High bandwidth, low latency: 10 Mbit Ethernet, sub-millisecond RTT.
inline NetworkProfile lan_profile() {
  return {"LAN (10Mbit Ethernet)", 10'000'000, sim::microseconds(500), 64,
          0.02};
}

/// High bandwidth, high latency: transcontinental Internet, ~90 ms RTT.
/// The nominal path was T1-class but shared; the paper's transfer rates
/// imply ~1 Mbit/s effective, which is what the profile models.
inline NetworkProfile wan_profile() {
  return {"WAN (MIT/LCS - LBL, ~90ms)", 1'000'000, sim::milliseconds(90), 64,
          0.03};
}

/// Low bandwidth, high latency: 28.8 kbit/s dialup PPP, ~150 ms RTT.
inline NetworkProfile ppp_profile() {
  return {"PPP (28.8k modem)", 28'800, sim::milliseconds(150), 24, 0.02,
          /*client_recv_buffer=*/8760};
}

}  // namespace hsim::harness
