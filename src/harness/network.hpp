// The paper's three network environments (Table 1).
#pragma once

#include <optional>
#include <string>

#include "net/channel.hpp"
#include "netem/profile.hpp"
#include "sim/time.hpp"

namespace hsim::harness {

struct NetworkProfile {
  std::string name;
  std::int64_t bandwidth_bps = 0;
  sim::Time rtt = 0;
  std::size_t queue_limit = 64;
  double delay_jitter = 0.02;
  /// Receive window the client host uses on this network (the paper's PPP
  /// client was Windows NT 4.0, whose default window of 8760 bytes keeps the
  /// modem queue from overflowing; the UNIX workstations used ~16 KB).
  std::uint32_t client_recv_buffer = 16384;

  net::ChannelConfig channel_config() const {
    return net::ChannelConfig::symmetric(bandwidth_bps, rtt, queue_limit,
                                         delay_jitter);
  }
};

/// High bandwidth, low latency: 10 Mbit Ethernet, sub-millisecond RTT.
inline NetworkProfile lan_profile() {
  return {"LAN (10Mbit Ethernet)", 10'000'000, sim::microseconds(500), 64,
          0.02};
}

/// High bandwidth, high latency: transcontinental Internet, ~90 ms RTT.
/// The nominal path was T1-class but shared; the paper's transfer rates
/// imply ~1 Mbit/s effective, which is what the profile models.
inline NetworkProfile wan_profile() {
  return {"WAN (MIT/LCS - LBL, ~90ms)", 1'000'000, sim::milliseconds(90), 64,
          0.03};
}

/// Low bandwidth, high latency: 28.8 kbit/s dialup PPP, ~150 ms RTT.
inline NetworkProfile ppp_profile() {
  return {"PPP (28.8k modem)", 28'800, sim::milliseconds(150), 24, 0.02,
          /*client_recv_buffer=*/8760};
}

/// Base access network for the netem mobile profiles: the propagation RTT of
/// a wired backhaul; the radio path's bandwidth timeline and scheduling
/// latency come from the overlaid profile, which also deepens the queue.
inline NetworkProfile mobile_profile() {
  return {"Mobile (netem profile)", 10'000'000, sim::milliseconds(40), 128,
          0.02};
}

// ---- Time-varying profile overlay (netem subsystem) -----------------------

/// The HSIM_PROFILE environment value, or "" when unset.
std::string profile_from_env();

/// Resolves a --profile / HSIM_PROFILE value to a path profile:
///   ""      -> nullopt (no overlay);
///   "flat"  -> nullopt, with *flat set: the caller overlays the identity
///              profile (each link's own static bandwidth as a single
///              constant segment — byte-exact with no overlay at all);
///   a name  -> netem::named_profile ("3g-drive", "4g-walk", ...);
///   a path  -> netem::load_profile_file (profiles/*.netem format).
/// Throws std::invalid_argument on an unknown name / unparsable file.
std::optional<netem::PathProfile> resolve_profile(const std::string& value,
                                                  bool* flat);

/// Applies the resolved overlay onto a duplex channel config, consulting
/// HSIM_PROFILE when `value` is empty. This is called by every driver path
/// (run_once, run_workload, their sharded twins and the engine-lookahead
/// calculators) AFTER the mutate_channel/mutate_access fault hooks, so
/// chaos regimes compose with any profile. See net::apply_path_profile for
/// `label_prefix`.
void apply_profile_overlay(const std::string& value, net::ChannelConfig& cfg,
                           const char* label_prefix = nullptr);

}  // namespace hsim::harness
