#include "harness/network.hpp"

#include <cstdlib>
#include <stdexcept>

namespace hsim::harness {

std::string profile_from_env() {
  const char* env = std::getenv("HSIM_PROFILE");
  return env != nullptr ? std::string(env) : std::string();
}

std::optional<netem::PathProfile> resolve_profile(const std::string& value,
                                                  bool* flat) {
  if (flat != nullptr) *flat = false;
  if (value.empty()) return std::nullopt;
  if (value == "flat") {
    if (flat != nullptr) *flat = true;
    return std::nullopt;
  }
  if (std::optional<netem::PathProfile> named = netem::named_profile(value)) {
    return named;
  }
  // Not a built-in: treat it as a trace file path (profiles/*.netem).
  if (value.find('/') != std::string::npos ||
      value.find(".netem") != std::string::npos) {
    netem::PathProfile p;
    std::string error;
    if (!netem::load_profile_file(value, &p, &error)) {
      throw std::invalid_argument(error);
    }
    return p;
  }
  std::string known = "flat";
  for (const std::string& n : netem::named_profile_names()) known += ", " + n;
  throw std::invalid_argument("unknown netem profile '" + value +
                              "' (known: " + known +
                              "; or pass a profiles/*.netem file path)");
}

void apply_profile_overlay(const std::string& value, net::ChannelConfig& cfg,
                           const char* label_prefix) {
  const std::string effective = value.empty() ? profile_from_env() : value;
  bool flat = false;
  std::optional<netem::PathProfile> profile = resolve_profile(effective, &flat);
  if (flat) {
    // Identity oracle: each direction's own static bandwidth as a constant
    // single-segment timeline, no radio, no queue override. Byte-exact with
    // no overlay — the CI goldens re-run under HSIM_PROFILE=flat to pin it.
    auto a = std::make_shared<netem::LinkDynamics>();
    a->profile = netem::Profile::constant(cfg.a_to_b.bandwidth_bps);
    auto b = std::make_shared<netem::LinkDynamics>();
    b->profile = netem::Profile::constant(cfg.b_to_a.bandwidth_bps);
    cfg.a_to_b.dynamics = std::move(a);
    cfg.b_to_a.dynamics = std::move(b);
    return;
  }
  if (!profile) return;
  net::apply_path_profile(*profile, cfg, label_prefix);
}

}  // namespace hsim::harness
