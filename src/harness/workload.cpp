#include "harness/workload.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "harness/chaos.hpp"
#include "harness/parallel.hpp"
#include "net/link.hpp"
#include "server/static_site.hpp"
#include "topo/topology.hpp"

namespace hsim::harness {

namespace {

constexpr net::IpAddr kServerAddr = 1;

net::IpAddr client_addr(unsigned i) { return 1000 + i; }

/// Clients-to-server aggregation point: everything a client uplink delivers
/// is pushed onto the shared bottleneck.
struct Funnel : net::PacketSink {
  net::Link* bottleneck = nullptr;
  void deliver(net::Packet packet) override {
    bottleneck->transmit(std::move(packet));
  }
};

/// Server-to-clients distribution point: routes by destination address onto
/// the matching client's access downlink.
struct Fanout : net::PacketSink {
  std::map<net::IpAddr, net::Link*> routes;
  void deliver(net::Packet packet) override {
    if (auto it = routes.find(packet.dst); it != routes.end()) {
      it->second->transmit(std::move(packet));
    }
  }
};

}  // namespace

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t salt) {
  // splitmix64: decorrelates the per-client streams from the master seed and
  // from each other without any cross-client draw ordering dependence.
  std::uint64_t z = master ^ (salt * 0x9e3779b97f4a7c15ULL);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

unsigned WorkloadResult::completed() const {
  unsigned n = 0;
  for (const ClientOutcome& c : clients) {
    if (c.complete()) ++n;
  }
  return n;
}

unsigned WorkloadResult::failed() const {
  unsigned n = 0;
  for (const ClientOutcome& c : clients) {
    if (c.resolved && !c.complete()) ++n;
  }
  return n;
}

bool WorkloadResult::all_resolved() const {
  return std::all_of(clients.begin(), clients.end(),
                     [](const ClientOutcome& c) { return c.resolved; });
}

std::vector<double> WorkloadResult::completed_page_seconds() const {
  std::vector<double> out;
  out.reserve(clients.size());
  for (const ClientOutcome& c : clients) {
    if (c.complete()) out.push_back(c.page_seconds());
  }
  return out;
}

namespace {
double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size())));
  return xs[std::min(xs.size() - 1, rank == 0 ? 0 : rank - 1)];
}
}  // namespace

double WorkloadResult::median_page_seconds() const {
  return percentile(completed_page_seconds(), 0.5);
}

double WorkloadResult::p95_page_seconds() const {
  return percentile(completed_page_seconds(), 0.95);
}

double WorkloadResult::jain_fairness_index() const {
  const std::vector<double> xs = completed_page_seconds();
  if (xs.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;  // all-zero times: degenerate but fair
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

WorkloadResult run_workload(const WorkloadConfig& config,
                            const content::MicroscapeSite& site) {
  // Sharded-engine dispatch: an explicit config knob wins, else HSIM_THREADS
  // promotes existing binaries at runtime. Topologies without a nanosecond of
  // cross-shard lookahead (zero-delay access legs) stay on the classic path.
  const unsigned threads =
      config.threads != 0 ? config.threads : threads_from_env();
  if (threads != 0 && config.num_clients > 0 &&
      workload_lookahead(config) >= 1) {
    return run_workload_sharded(config, site, threads);
  }

  // Fresh registry per run (see run_once): installed before the first
  // instrumented component so all handles bind to it.
  obs::Registry registry;
  obs::ScopedRegistry scoped(&registry);

  const unsigned n = config.num_clients;
  sim::EventQueue queue;
  queue.reserve(64 + 16 * static_cast<std::size_t>(n));

  const bool redundant = config.topology == TopologyKind::kDumbbellRedundant;
  const bool dumbbell = config.topology != TopologyKind::kStar;
  // Bottleneck link names depend on the shape; the redundant dumbbell has a
  // primary pair (bnA) and a backup pair (bnB), all of which get the trace tap
  // so conservation and the summary hold across failovers.
  const std::vector<std::string> bn_links =
      redundant
          ? std::vector<std::string>{"bnA.up", "bnA.down", "bnB.up", "bnB.down"}
          : std::vector<std::string>{"bn.up", "bn.down"};

  // ---- Shared side: server host, bottleneck, aggregation points ----
  sim::Rng server_rng(derive_seed(config.master_seed, kServerSeedSalt));
  tcp::Host server_host(queue, kServerAddr, "server", server_rng.fork());

  net::TraceSummarizer bottleneck_trace(kServerAddr);
  const auto tap = [&bottleneck_trace, &queue](const net::Packet& p) {
    bottleneck_trace.record(queue.now(), p);
  };

  net::ChannelConfig access = config.access.channel_config();
  if (config.mutate_access) config.mutate_access(access);
  apply_profile_overlay(config.profile, access);
  std::vector<std::unique_ptr<tcp::Host>> hosts;
  std::vector<std::unique_ptr<net::Link>> links;  // star: owns up+down per client
  std::vector<std::unique_ptr<client::Robot>> robots;
  hosts.reserve(n);
  robots.reserve(n);

  client::ClientConfig client_template = config.client;
  client_template.tcp.recv_buffer = std::min(
      client_template.tcp.recv_buffer, config.access.client_recv_buffer);
  // Congestion-control override hits both sides of every connection.
  server::ServerConfig server_config = config.server;
  if (config.cc) {
    client_template.tcp.cc = *config.cc;
    server_config.tcp.cc = *config.cc;
  }
  // De-synchronised backoff: each client's retry jitter draws from its own
  // splitmix64 stream, so a fleet never stampedes in lock-step. The seed is
  // a plain config value (no rng draw), leaving legacy draw order untouched.
  const auto client_config_for = [&](unsigned i) {
    client::ClientConfig cc = client_template;
    if (cc.retry_jitter > 0.0 && cc.retry_jitter_seed == 0) {
      cc.retry_jitter_seed = derive_seed(config.master_seed, kRetrySeedSalt + i);
    }
    return cc;
  };

  // Star wiring (legacy path — everything here, including the server_rng and
  // per-client rng fork order, must stay byte-exact with pre-topology builds).
  std::unique_ptr<net::Link> bottleneck_up;    // clients -> server
  std::unique_ptr<net::Link> bottleneck_down;  // server -> clients
  Funnel funnel;
  Fanout fanout;
  // Dumbbell wiring (routers + queue disciplines, topo subsystem).
  topo::Topology topo;
  std::unique_ptr<server::HttpServer> server;

  if (!dumbbell) {
    net::LinkConfig bn_cfg;
    bn_cfg.bandwidth_bps = config.bottleneck_bandwidth_bps;
    bn_cfg.propagation_delay = config.bottleneck_delay;
    bn_cfg.queue_limit_packets = config.bottleneck_queue_packets;
    bottleneck_up =
        std::make_unique<net::Link>(queue, bn_cfg, server_rng.fork());
    bottleneck_down =
        std::make_unique<net::Link>(queue, bn_cfg, server_rng.fork());
    bottleneck_up->set_tap(tap);
    bottleneck_down->set_tap(tap);

    funnel.bottleneck = bottleneck_up.get();
    bottleneck_up->set_sink(&server_host);
    bottleneck_down->set_sink(&fanout);
    server_host.attach_uplink(bottleneck_down.get());

    server = std::make_unique<server::HttpServer>(
        server_host, server::StaticSite::from_microscape(site), server_config,
        server_rng.fork());
    server->start(80);

    // Per-client side: host, access links, robot.
    links.reserve(2 * static_cast<std::size_t>(n));
    for (unsigned i = 0; i < n; ++i) {
      sim::Rng crng(derive_seed(config.master_seed, kClientSeedSalt + i));
      auto host = std::make_unique<tcp::Host>(
          queue, client_addr(i), "client" + std::to_string(i), crng.fork());
      auto up = std::make_unique<net::Link>(queue, access.a_to_b, crng.fork());
      auto down =
          std::make_unique<net::Link>(queue, access.b_to_a, crng.fork());
      up->set_sink(&funnel);
      down->set_sink(host.get());
      fanout.routes[client_addr(i)] = down.get();
      host->attach_uplink(up.get());
      robots.push_back(std::make_unique<client::Robot>(*host, kServerAddr, 80,
                                                       client_config_for(i)));
      hosts.push_back(std::move(host));
      links.push_back(std::move(up));
      links.push_back(std::move(down));
    }
  } else {
    // Client hosts first (same per-client seed scheme as the star path; the
    // access links are built by the topology from its own kTopoSeedSalt
    // stream instead of the per-client streams).
    std::vector<tcp::Host*> client_hosts;
    client_hosts.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      sim::Rng crng(derive_seed(config.master_seed, kClientSeedSalt + i));
      hosts.push_back(std::make_unique<tcp::Host>(
          queue, client_addr(i), "client" + std::to_string(i), crng.fork()));
      client_hosts.push_back(hosts.back().get());
    }

    topo::BottleneckSpec spec;
    spec.bandwidth_bps = config.bottleneck_bandwidth_bps;
    spec.delay = config.bottleneck_delay;
    spec.queue = config.bottleneck_queue;
    // One knob governs the physical packet budget in both topologies.
    spec.queue.drop_tail.limit_packets = config.bottleneck_queue_packets;
    spec.queue.red.limit_packets = config.bottleneck_queue_packets;
    spec.mutate_link = config.mutate_bottleneck;

    topo::TopologyBuilder builder(
        queue, sim::Rng(derive_seed(config.master_seed, kTopoSeedSalt)));
    topo = redundant ? builder.dumbbell_redundant(client_hosts, &server_host,
                                                  access, spec, config.failover)
                     : builder.dumbbell(client_hosts, &server_host, access, spec);
    for (const std::string& name : bn_links) topo.link(name)->set_tap(tap);
    if (config.hop_trace) topo.set_hop_trace(config.hop_trace);
    if (config.on_topology) config.on_topology(topo, queue);

    server = std::make_unique<server::HttpServer>(
        server_host, server::StaticSite::from_microscape(site), server_config,
        server_rng.fork());
    server->start(80);

    for (unsigned i = 0; i < n; ++i) {
      robots.push_back(std::make_unique<client::Robot>(
          *hosts[i], kServerAddr, 80, client_config_for(i)));
    }
  }

  // ---- Arrival process ----
  sim::Rng arrival_rng(derive_seed(config.master_seed, kArrivalSeedSalt));
  std::vector<sim::Time> arrivals(n, 0);
  sim::Time t = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (config.arrivals == ArrivalProcess::kFixedInterval) {
      arrivals[i] = static_cast<sim::Time>(i) * config.mean_interarrival;
    } else {
      const double u = arrival_rng.uniform_real(0.0, 1.0);
      t += static_cast<sim::Time>(
          -static_cast<double>(config.mean_interarrival) * std::log1p(-u));
      arrivals[i] = t;
    }
  }

  std::vector<char> resolved(n, 0);
  for (unsigned i = 0; i < n; ++i) {
    queue.schedule_at(arrivals[i], [&, i] {
      robots[i]->start_first_visit(config.root,
                                   [&resolved, i] { resolved[i] = 1; });
    });
  }

  if (config.epoch > 0 && config.on_epoch) {
    for (sim::Time te = config.epoch; te <= config.horizon;
         te += config.epoch) {
      queue.schedule_at(te, [&config] { config.on_epoch(); });
    }
  }

  std::size_t events = queue.run_until(config.horizon);
  // Allow FIN exchanges, idle timeouts and TIME_WAIT to drain so that the
  // connection-leak accounting below reflects steady state.
  events += queue.run_until(queue.now() + config.drain);

  // ---- Collect ----
  WorkloadResult result;
  result.events_executed = events;
  result.clients.resize(n);
  const obs::HistogramHandle page_ms = obs::histogram_handle("workload.page_ms");
  for (unsigned i = 0; i < n; ++i) {
    ClientOutcome& out = result.clients[i];
    out.id = i;
    out.arrival = arrivals[i];
    out.resolved = resolved[i] != 0;
    out.stats = robots[i]->stats();
    out.leaked_connections = hosts[i]->open_connections();
    if (out.complete()) {
      page_ms.observe(
          static_cast<std::uint64_t>(out.page_seconds() * 1000.0));
    }
    if (config.verify_cache && out.stats.complete) {
      out.byte_exact =
          cache_matches_site(robots[i]->cache(), site, config.root);
    }
  }
  // Registry-backed, like run_once: the summarizer feeds the trace.* metrics
  // per packet, and summary_from_metrics rebuilds the identical summary.
  result.bottleneck = net::summary_from_metrics(registry);
  result.bottleneck_syns = registry.counter_value("trace.syn_packets");
  result.tcp_retransmits = registry.counter_value("tcp.retransmits");
  if (!dumbbell) {
    result.bottleneck_queue_drops =
        bottleneck_up->stats().packets_dropped_queue +
        bottleneck_down->stats().packets_dropped_queue;
  } else {
    // All bottleneck buffering lives in the queue disciplines (the links'
    // internal queues are back-pressured and never drop, but count them
    // anyway so a regression there can't hide).
    result.bottleneck_queue_drops = topo.queue_drops();
    for (const std::string& name : bn_links) {
      result.bottleneck_queue_drops +=
          topo.link(name)->stats().packets_dropped_queue;
    }
    for (const topo::QueueDisc* q : topo.queues()) {
      if (q->label().rfind("bn", 0) != 0) continue;  // fan-out queues: silent
      result.queues.push_back(
          QueueSummary{q->label(), std::string(q->kind()), q->stats()});
    }
  }
  result.server = server->stats();
  if (const tcp::ListenerStats* ls = server_host.listener_stats(80)) {
    result.listener = *ls;
  }
  result.server_connections_total = server_host.total_connections_created();
  result.server_max_open = server_host.max_simultaneous_connections();
  result.server_open_after_drain = server_host.open_connections();
  if (config.metrics_sink) config.metrics_sink->consume(registry);
  result.metrics = registry.snapshot();
  return result;
}

}  // namespace hsim::harness
