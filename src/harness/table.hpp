// Paper-style table rendering: one row per protocol configuration, with the
// First Time Retrieval and Cache Validation column groups of Tables 4-9.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace hsim::harness {

struct TableRow {
  std::string label;
  AveragedResult first_visit;
  AveragedResult revalidation;
  /// The paper's published values for the same cell, for side-by-side
  /// comparison in the bench output (0 = not published, e.g. Table 8/9 omit
  /// HTTP/1.0 rows).
  double paper_first_packets = 0, paper_first_seconds = 0;
  double paper_reval_packets = 0, paper_reval_seconds = 0;
};

/// Renders the paper's layout:
///   label | Pa Bytes Sec %ov | Pa Bytes Sec %ov
std::string render_table(const std::string& title,
                         const std::vector<TableRow>& rows,
                         bool with_paper_reference = true);

/// Renders a single scenario block (Tables 10/11 use both, Table 3 one).
std::string render_summary_line(const std::string& label,
                                const AveragedResult& r);

}  // namespace hsim::harness
