// Canonical golden-trace scenarios.
//
// A golden trace pins down the simulator's packet-level behaviour for one
// fully-specified experiment: network profile, server, client protocol mode
// and seed. Because every layer is deterministic for a given seed, the
// captured trace is byte-stable — any change to a TCP constant, framing
// decision or scheduling order shows up as a trace diff, which is exactly
// what the golden regression suite wants to catch.
//
// Two scenarios are canonical, mirroring the paper's headline tables:
//   - table4: HTTP/1.0 with 4 parallel connections, Jigsaw, LAN, first visit
//   - table6: HTTP/1.1 pipelined, Jigsaw, WAN, first visit
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "net/trace.hpp"

namespace hsim::harness {

/// Table 4 row 1: HTTP/1.0 parallel over the LAN profile, seed 1.
ExperimentSpec golden_table4_spec();

/// Table 6 row 3: HTTP/1.1 pipelined over the WAN profile, seed 1.
ExperimentSpec golden_table6_spec();

/// The h2 column of Table 4: multiplexed framing + push over the LAN, seed 1.
ExperimentSpec golden_table4_h2_spec();

/// The h2 column of Table 6: multiplexed framing + push over the WAN, seed 1.
ExperimentSpec golden_table6_h2_spec();

/// Looks up a golden spec by name ("table4" / "table6" / "table4h2" /
/// "table6h2"); returns false for an unknown name.
bool golden_spec_by_name(const std::string& name, ExperimentSpec* out);

/// All golden scenario names, in canonical order.
std::vector<std::string> golden_scenario_names();

/// Runs the spec once and returns the captured client-side packet records
/// (the measured phase only — warm-up traffic is never traced).
std::vector<net::TraceRecord> capture_trace(const ExperimentSpec& spec,
                                            const content::MicroscapeSite& site);

}  // namespace hsim::harness
