#include "harness/chaos.hpp"

#include <algorithm>
#include <cstdlib>

namespace hsim::harness {

std::string_view to_string(ChaosFault fault) {
  switch (fault) {
    case ChaosFault::kNone: return "none";
    case ChaosFault::kBurstLoss: return "burst-loss";
    case ChaosFault::kOutage: return "outage";
    case ChaosFault::kLinkFlaps: return "link-flaps";
    case ChaosFault::kDuplication: return "duplication";
    case ChaosFault::kReordering: return "reordering";
    case ChaosFault::kCorruption: return "corruption";
    case ChaosFault::kServerStall: return "server-stall";
    case ChaosFault::kPrematureClose: return "premature-close";
    case ChaosFault::kServerErrors: return "server-errors";
  }
  return "?";
}

std::vector<ChaosFault> all_chaos_faults() {
  return {ChaosFault::kBurstLoss,  ChaosFault::kOutage,
          ChaosFault::kLinkFlaps,  ChaosFault::kDuplication,
          ChaosFault::kReordering, ChaosFault::kCorruption,
          ChaosFault::kServerStall, ChaosFault::kPrematureClose,
          ChaosFault::kServerErrors};
}

namespace {

void mutate_both(ExperimentSpec& spec,
                 const std::function<void(net::LinkConfig&)>& edit) {
  spec.mutate_channel = [edit](net::ChannelConfig& channel) {
    edit(channel.a_to_b);
    edit(channel.b_to_a);
  };
}

}  // namespace

void apply_chaos(ChaosFault fault, ExperimentSpec& spec) {
  // Arm the client's recovery machinery for every regime. Bounded attempts
  // plus per-request and whole-page deadlines are what turn each fault into
  // "recovered" or "cleanly failed" — never a hang.
  spec.client.max_attempts = 8;
  spec.client.request_deadline = sim::seconds(5);
  spec.client.page_deadline = sim::seconds(120);
  spec.client.retry_backoff = sim::milliseconds(100);
  spec.client.retry_server_errors = true;

  switch (fault) {
    case ChaosFault::kNone:
      break;
    case ChaosFault::kBurstLoss:
      // ~2.6% average loss concentrated in bursts of ~3 packets.
      mutate_both(spec, [](net::LinkConfig& link) {
        link.gilbert_elliott.enabled = true;
        link.gilbert_elliott.p_good_to_bad = 0.02;
        link.gilbert_elliott.p_bad_to_good = 0.3;
        link.gilbert_elliott.loss_good = 0.001;
        link.gilbert_elliott.loss_bad = 0.4;
      });
      break;
    case ChaosFault::kOutage:
      // The link dies for 1.5 s in the middle of the retrieval; TCP rides
      // it out with retransmission backoff (or the request deadline reissues
      // on a fresh connection once the link returns).
      mutate_both(spec, [](net::LinkConfig& link) {
        link.outages.push_back(
            {sim::milliseconds(800), sim::milliseconds(2300)});
      });
      break;
    case ChaosFault::kLinkFlaps:
      mutate_both(spec, [](net::LinkConfig& link) {
        const auto flaps = net::make_flaps(
            sim::milliseconds(500), /*down_for=*/sim::milliseconds(200),
            /*up_for=*/sim::milliseconds(800), /*count=*/4);
        link.outages.insert(link.outages.end(), flaps.begin(), flaps.end());
      });
      break;
    case ChaosFault::kDuplication:
      mutate_both(spec, [](net::LinkConfig& link) {
        link.duplicate_probability = 0.08;
      });
      break;
    case ChaosFault::kReordering:
      mutate_both(spec, [](net::LinkConfig& link) {
        link.reorder_probability = 0.15;
        link.reorder_extra_delay = sim::milliseconds(30);
      });
      break;
    case ChaosFault::kCorruption:
      mutate_both(spec, [](net::LinkConfig& link) {
        link.corrupt_probability = 0.03;
      });
      break;
    case ChaosFault::kServerStall:
      // The first accepted connection wedges after 30 KB: it stays open but
      // sends nothing more. Only the client's request deadline escapes this.
      spec.server.faults.stall_after_bytes = 30'000;
      spec.server.faults.faulty_connection_limit = 1;
      break;
    case ChaosFault::kPrematureClose:
      // The first two connections die mid-response, discarding buffered
      // output. Truncated Content-Length bodies never parse as complete, so
      // the victims requeue and re-issue on fresh connections.
      spec.server.faults.premature_close_after_bytes = 25'000;
      spec.server.faults.faulty_connection_limit = 2;
      break;
    case ChaosFault::kServerErrors:
      spec.server.faults.error_probability = 0.1;
      break;
  }
}

bool cache_matches_site(const client::Cache& cache,
                        const content::MicroscapeSite& site,
                        const std::string& root) {
  const client::CacheEntry* html = cache.find(root);
  if (html == nullptr) return false;
  if (!html->body.equals(std::string_view(site.html))) return false;
  for (const content::SiteImage& image : site.images) {
    const client::CacheEntry* entry = cache.find(image.path);
    if (entry == nullptr || entry->body != image.gif_bytes) return false;
  }
  return true;
}

ChaosOutcome run_chaos(ChaosFault fault, client::ProtocolMode mode,
                       const content::MicroscapeSite& site,
                       std::uint64_t seed, TopologyKind topology) {
  ExperimentSpec spec;
  spec.network = wan_profile();
  spec.client = robot_config(mode);
  spec.scenario = Scenario::kFirstVisit;
  spec.seed = seed;
  apply_chaos(fault, spec);
  // CI matrix hook: HSIM_CC=reno|newreno|cubic|bbr reruns the whole chaos
  // suite under a different congestion-control module without a rebuild.
  // Unset or unknown values keep the configs' default (Reno, byte-exact).
  if (const char* env_cc = std::getenv("HSIM_CC")) {
    tcp::CcKind kind = tcp::CcKind::kReno;
    if (tcp::parse_cc_kind(env_cc, &kind)) {
      spec.client.tcp.cc = kind;
      spec.server.tcp.cc = kind;
    }
  }

  ChaosOutcome outcome;
  if (topology == TopologyKind::kStar) {
    spec.inspect_robot = [&](client::Robot& robot) {
      outcome.byte_exact = cache_matches_site(robot.cache(), site);
    };
    outcome.result = run_once(spec, site);
    return outcome;
  }

  // Topology substrate: the same armed client and faulted configuration, but
  // the single retrieval crosses routers and queue disciplines. Channel
  // mutations land on the client's access leg; server faults ride through
  // unchanged.
  WorkloadConfig wc;
  wc.num_clients = 1;
  wc.arrivals = ArrivalProcess::kFixedInterval;
  wc.topology = topology;
  wc.access = wan_profile();
  wc.mutate_access = spec.mutate_channel;
  wc.server = spec.server;
  wc.client = spec.client;
  wc.master_seed = seed;
  wc.verify_cache = true;
  // The armed page deadline bounds the retrieval; keep the workload horizon
  // comfortably past it so the verdict is the robot's, not the harness's.
  wc.horizon = sim::seconds(300);
  WorkloadResult wr = run_workload(wc, site);

  const ClientOutcome& client = wr.clients.at(0);
  outcome.byte_exact = client.byte_exact;
  outcome.result.trace = wr.bottleneck;
  outcome.result.robot = client.stats;
  outcome.result.server = wr.server;
  outcome.result.metrics = std::move(wr.metrics);
  outcome.result.page_started = client.stats.started;
  outcome.result.page_finished = client.stats.finished;
  return outcome;
}

}  // namespace hsim::harness
