#include "harness/scenarios.hpp"

namespace hsim::harness {

ExperimentSpec golden_table4_spec() {
  ExperimentSpec spec;
  spec.network = lan_profile();
  spec.server = server::jigsaw_config();
  spec.client = robot_config(client::ProtocolMode::kHttp10Parallel);
  spec.scenario = Scenario::kFirstVisit;
  spec.seed = 1;
  return spec;
}

ExperimentSpec golden_table6_spec() {
  ExperimentSpec spec;
  spec.network = wan_profile();
  spec.server = server::jigsaw_config();
  spec.client = robot_config(client::ProtocolMode::kHttp11Pipelined);
  spec.scenario = Scenario::kFirstVisit;
  spec.seed = 1;
  return spec;
}

ExperimentSpec golden_table4_h2_spec() {
  ExperimentSpec spec;
  spec.network = lan_profile();
  spec.server = server::jigsaw_config();
  spec.client = robot_config(client::ProtocolMode::kH2);
  spec.scenario = Scenario::kFirstVisit;
  spec.seed = 1;
  return spec;
}

ExperimentSpec golden_table6_h2_spec() {
  ExperimentSpec spec;
  spec.network = wan_profile();
  spec.server = server::jigsaw_config();
  spec.client = robot_config(client::ProtocolMode::kH2);
  spec.scenario = Scenario::kFirstVisit;
  spec.seed = 1;
  return spec;
}

bool golden_spec_by_name(const std::string& name, ExperimentSpec* out) {
  if (name == "table4") {
    *out = golden_table4_spec();
    return true;
  }
  if (name == "table6") {
    *out = golden_table6_spec();
    return true;
  }
  if (name == "table4h2") {
    *out = golden_table4_h2_spec();
    return true;
  }
  if (name == "table6h2") {
    *out = golden_table6_h2_spec();
    return true;
  }
  return false;
}

std::vector<std::string> golden_scenario_names() {
  return {"table4", "table6", "table4h2", "table6h2"};
}

std::vector<net::TraceRecord> capture_trace(
    const ExperimentSpec& spec, const content::MicroscapeSite& site) {
  std::vector<net::TraceRecord> records;
  ExperimentSpec capture = spec;
  capture.inspect_trace = [&records](const net::PacketTrace& trace) {
    records = trace.records();
  };
  run_once(capture, site);
  return records;
}

}  // namespace hsim::harness
