// Host-sharded drivers for the harness entry points.
//
// run_workload and run_once stay the public API; when a caller (or the
// HSIM_THREADS environment variable) asks for worker threads they dispatch
// into the sharded drivers here, which rebuild the exact same simulation on
// a sim::ShardedEngine:
//
//   workload, star     — shard 0 owns the server host, the HTTP server and
//                        both bottleneck links; client i (host + access link
//                        pair + robot) lives on shard 1 + i mod (S-1).
//                        Client uplinks remote-deliver into the funnel on
//                        shard 0; the bottleneck downlink remote-delivers
//                        per packet.dst straight to the owning client shard.
//   workload, dumbbell — routers, queue disciplines, the bottleneck pair(s),
//                        the server legs and every client *downlink* stay on
//                        shard 0 (they are all driven by shard-0 components);
//                        only each client's uplink moves to its client shard
//                        (TopologyBuilder::set_uplink_placement). Uplink
//                        deliveries cross into the gate router; downlink
//                        deliveries cross back to the client's shard.
//   run_once           — two shards: 0 = client side, 1 = server side, the
//                        duplex channel's two links split accordingly.
//
// Determinism: every rng stream is forked in exactly the legacy order, each
// component schedules only against its own shard's queue, and cross-shard
// deliveries are ordered by the sender's full EventKey — see sim/shard.hpp
// for why the thread count can never change the result. Metrics are counted
// into one registry per shard (obs::set_registry is thread-local) and merged
// in shard order after the run.
#pragma once

#include "harness/experiment.hpp"
#include "harness/workload.hpp"
#include "sim/time.hpp"

namespace hsim::harness {

/// HSIM_THREADS parsed as an unsigned, or 0 when unset/unparsable. The
/// runtime analogue of the configs' `threads` field: it lets CI rerun any
/// existing binary (golden tests, benches, the chaos matrix) on the sharded
/// engine without a rebuild, mirroring the HSIM_CC hook.
unsigned threads_from_env();

/// Conservative lookahead available to a sharded run of this configuration:
/// the minimum worst-case-jitter latency over every link that would cross a
/// shard boundary. < 1 ns means the topology cannot be sharded (the callers
/// fall back to the classic driver).
sim::Time workload_lookahead(const WorkloadConfig& config);
sim::Time run_once_lookahead(const ExperimentSpec& spec);

/// The sharded equivalents of run_workload / run_once. `threads` must be
/// >= 1 and the matching lookahead >= 1 ns; call only via the public entry
/// points, which enforce both.
WorkloadResult run_workload_sharded(const WorkloadConfig& config,
                                    const content::MicroscapeSite& site,
                                    unsigned threads);
RunResult run_once_sharded(const ExperimentSpec& spec,
                           const content::MicroscapeSite& site,
                           unsigned threads);

}  // namespace hsim::harness
