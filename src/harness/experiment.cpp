#include "harness/experiment.hpp"

#include "harness/parallel.hpp"
#include "server/static_site.hpp"

namespace hsim::harness {

namespace {
constexpr net::IpAddr kClientAddr = 1;
constexpr net::IpAddr kServerAddr = 2;
constexpr net::Port kHttpPort = 80;
}  // namespace

std::string_view to_string(Scenario s) {
  return s == Scenario::kFirstVisit ? "First Time Retrieval"
                                    : "Cache Validation";
}

client::ClientConfig robot_config(client::ProtocolMode mode) {
  client::ClientConfig c;
  c.mode = mode;
  switch (mode) {
    case client::ProtocolMode::kHttp10Parallel:
      c.max_connections = 4;  // Navigator's default, as the paper set it
      c.revalidation = client::RevalidationStyle::kGetPlusHead;
      // libwww 4.1D had no persistent cache; responses cost only parsing.
      c.per_response_cpu = sim::milliseconds(2);
      break;
    case client::ProtocolMode::kHttp11Persistent:
    case client::ProtocolMode::kHttp11Pipelined:
    case client::ProtocolMode::kHttp11PipelinedCompressed:
    case client::ProtocolMode::kH2:
      c.max_connections = 1;
      c.revalidation = client::RevalidationStyle::kConditionalGet;
      break;
  }
  return c;
}

client::ClientConfig netscape_client_config() {
  client::ClientConfig c;
  c.mode = client::ProtocolMode::kHttp10Parallel;
  c.max_connections = 4;
  c.profile = client::netscape_profile();
  c.revalidation = client::RevalidationStyle::kConditionalGet;
  c.use_etags = false;  // HTTP/1.0 validators are dates
  c.per_response_cpu = sim::milliseconds(4);
  return c;
}

client::ClientConfig msie_client_config(bool broken_revalidation) {
  client::ClientConfig c;
  c.mode = client::ProtocolMode::kHttp11Persistent;
  c.max_connections = 4;
  c.profile = client::msie_profile();
  c.revalidation = broken_revalidation
                       ? client::RevalidationStyle::kGetPlusHead
                       : client::RevalidationStyle::kConditionalGet;
  c.per_response_cpu = sim::milliseconds(4);
  return c;
}

RunResult run_once(const ExperimentSpec& spec,
                   const content::MicroscapeSite& site) {
  // Sharded-engine dispatch, mirroring run_workload: config knob first, then
  // the HSIM_THREADS environment hook; zero-lookahead channels stay classic.
  const unsigned threads =
      spec.threads != 0 ? spec.threads : threads_from_env();
  if (threads != 0 && run_once_lookahead(spec) >= 1) {
    return run_once_sharded(spec, site, threads);
  }

  // One registry per run, installed before any instrumented component is
  // built so every Metrics::bind() resolves against it. The registry dies
  // with this frame; RunResult carries a Snapshot instead.
  obs::Registry registry;
  if (spec.conn_timelines) registry.enable_timelines();
  obs::ScopedRegistry scoped(&registry);

  sim::EventQueue queue;
  sim::Rng rng(spec.seed);

  net::ChannelConfig channel_config = spec.network.channel_config();
  if (spec.mutate_channel) spec.mutate_channel(channel_config);
  apply_profile_overlay(spec.profile, channel_config, "access");
  net::Channel channel(queue, channel_config, rng.fork());
  tcp::Host client_host(queue, kClientAddr, "client", rng.fork());
  tcp::Host server_host(queue, kServerAddr, "server", rng.fork());
  channel.attach_a(&client_host);
  channel.attach_b(&server_host);
  client_host.attach_uplink(&channel.uplink_from_a());
  server_host.attach_uplink(&channel.uplink_from_b());
  if (spec.make_link_sizer) {
    channel.uplink_from_a().set_payload_sizer(spec.make_link_sizer());
    channel.uplink_from_b().set_payload_sizer(spec.make_link_sizer());
  }

  net::PacketTrace trace(kClientAddr);

  server::HttpServer server(server_host,
                            server::StaticSite::from_microscape(site),
                            spec.server, rng.fork());
  server.start(kHttpPort);

  client::ClientConfig client_config = spec.client;
  client_config.tcp.recv_buffer = std::min(client_config.tcp.recv_buffer,
                                           spec.network.client_recv_buffer);
  client::Robot robot(client_host, kServerAddr, kHttpPort, client_config);

  const auto run_to_completion = [&] {
    // Generous horizon: even PPP first visits finish within 120 s; the
    // bound only protects against pathological stalls.
    queue.run_until(sim::seconds(600));
  };

  if (spec.scenario == Scenario::kRevalidation) {
    // Unmeasured warm-up to populate the cache.
    bool warm_done = false;
    robot.start_first_visit("/index.html", [&] { warm_done = true; });
    run_to_completion();
    if (!warm_done) {
      return RunResult{};  // warm-up stalled; surfaced as incomplete
    }
    // Let connections drain fully, then start measuring.
    queue.run_until(queue.now() + sim::seconds(120));
    client_host.reset_connection_counters();
  }

  channel.set_trace(&trace);
  bool done = false;
  if (spec.scenario == Scenario::kFirstVisit) {
    robot.start_first_visit("/index.html", [&] { done = true; });
  } else {
    robot.start_revalidation("/index.html", [&] { done = true; });
  }
  run_to_completion();
  // Allow connection teardown (FIN exchanges) to be captured.
  queue.run_until(queue.now() + sim::seconds(120));
  (void)done;
  if (spec.inspect_robot) spec.inspect_robot(robot);
  if (spec.inspect_trace) spec.inspect_trace(trace);
  if (spec.metrics_sink) spec.metrics_sink->consume(registry);

  RunResult result;
  // The summary is rebuilt from the trace.* registry counters rather than by
  // walking the records again — byte-identical by construction (both paths
  // are fed per-packet by PacketTrace::record and share fill_ratios()).
  result.trace = net::summary_from_metrics(registry);
  result.metrics = registry.snapshot();
  result.page_started = registry.gauge_value("client.page_started_ns", 0);
  result.page_finished = registry.gauge_value("client.page_finished_ns", 0);
  result.robot = robot.stats();
  result.server = server.stats();
  result.connections_used = client_host.total_connections_created();
  result.max_parallel_connections = client_host.max_simultaneous_connections();
  result.packet_trains = trace.packet_trains();
  result.mean_packet_train = trace.mean_packet_train_length();
  return result;
}

AveragedResult run_averaged(const ExperimentSpec& spec,
                            const content::MicroscapeSite& site,
                            unsigned runs) {
  AveragedResult avg;
  for (unsigned i = 0; i < runs; ++i) {
    ExperimentSpec s = spec;
    s.seed = spec.seed + i * 7919;
    const RunResult r = run_once(s, site);
    avg.packets += r.packets();
    avg.bytes += r.bytes();
    avg.seconds += r.seconds();
    avg.overhead_percent += r.overhead_percent();
    avg.packets_c2s += static_cast<double>(r.trace.packets_client_to_server);
    avg.packets_s2c += static_cast<double>(r.trace.packets_server_to_client);
    avg.connections += static_cast<double>(r.connections_used);
    avg.mean_packet_train += r.mean_packet_train;
    avg.all_complete = avg.all_complete && r.robot.complete;
  }
  const double n = static_cast<double>(runs);
  avg.packets /= n;
  avg.bytes /= n;
  avg.seconds /= n;
  avg.overhead_percent /= n;
  avg.packets_c2s /= n;
  avg.packets_s2c /= n;
  avg.connections /= n;
  avg.mean_packet_train /= n;
  return avg;
}

const content::MicroscapeSite& shared_site() {
  static const content::MicroscapeSite site = content::build_microscape();
  return site;
}

const content::MicroscapeSite& shared_modern_site(content::ModernCodec codec) {
  static const content::MicroscapeSite webp =
      content::modernize_site(shared_site(), content::ModernCodec::kWebP);
  static const content::MicroscapeSite avif =
      content::modernize_site(shared_site(), content::ModernCodec::kAvif);
  return codec == content::ModernCodec::kWebP ? webp : avif;
}

}  // namespace hsim::harness
