#include "harness/soak.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/trace_io.hpp"

namespace hsim::harness {

std::string_view to_string(TopoFaultKind kind) {
  switch (kind) {
    case TopoFaultKind::kRouterCrash: return "router-crash";
    case TopoFaultKind::kBottleneckFlap: return "bottleneck-flap";
    case TopoFaultKind::kQueueWedge: return "queue-wedge";
  }
  return "?";
}

bool SoakResult::ok() const {
  if (!violations.empty() || violations_suppressed != 0) return false;
  if (!workload.all_resolved()) return false;
  if (workload.server_open_after_drain != 0) return false;
  for (const ClientOutcome& c : workload.clients) {
    if (c.leaked_connections != 0) return false;
    if (c.stats.requests_failed != c.stats.failures.size()) return false;
  }
  return true;
}

std::vector<TopoFaultEvent> default_soak_timeline() {
  return {
      // Long enough past the detection delay that failover *and* failback
      // both fire while clients are mid-page.
      {TopoFaultKind::kBottleneckFlap, "", sim::seconds(3),
       sim::milliseconds(1500)},
      {TopoFaultKind::kRouterCrash, "gate", sim::seconds(8),
       sim::milliseconds(800)},
      {TopoFaultKind::kQueueWedge, "bnA.up", sim::seconds(12),
       sim::milliseconds(1200)},
      {TopoFaultKind::kBottleneckFlap, "", sim::seconds(16),
       sim::milliseconds(400)},
  };
}

namespace {

void add_violation(SoakResult& out, std::string message) {
  if (out.violations.size() >= SoakResult::kMaxViolations) {
    ++out.violations_suppressed;
    return;
  }
  out.violations.push_back(std::move(message));
}

/// One sweep of the conservation oracles over the live topology. `where`
/// stamps each violation with the epoch it surfaced in.
void check_conservation(SoakResult& out, const topo::Topology& topo,
                        const std::string& where) {
  for (const auto& router : topo.routers()) {
    std::uint64_t offered = 0, enqueued = 0;
    for (std::size_t i = 0; i < router->egress_count(); ++i) {
      const topo::QueueDisc& disc = router->egress_queue(i);
      const topo::QueueStats& qs = disc.stats();
      offered += qs.offered_packets;
      enqueued += qs.enqueued_packets;
      if (qs.offered_packets != qs.enqueued_packets + qs.dropped()) {
        std::ostringstream oss;
        oss << where << " queue " << disc.label() << ": offered "
            << qs.offered_packets << " != enqueued " << qs.enqueued_packets
            << " + dropped " << qs.dropped();
        add_violation(out, oss.str());
      }
      const std::uint64_t accounted = qs.dequeued_packets +
                                      qs.dropped_flushed +
                                      disc.depth_packets();
      if (qs.enqueued_packets != accounted) {
        std::ostringstream oss;
        oss << where << " queue " << disc.label() << ": enqueued "
            << qs.enqueued_packets << " != dequeued " << qs.dequeued_packets
            << " + flushed " << qs.dropped_flushed << " + depth "
            << disc.depth_packets();
        add_violation(out, oss.str());
      }
      // Everything the discipline handed the link must be on the wire, in a
      // drop bucket, or still in the transmitter's own (back-pressured)
      // queue. Duplicates deliver twice but are sent once, so they cancel.
      const net::Link* link = router->egress_link(i);
      const net::LinkStats& ls = link->stats();
      const std::uint64_t link_accounted =
          ls.packets_sent + ls.packets_dropped_queue +
          ls.packets_dropped_random + ls.packets_dropped_burst +
          ls.packets_dropped_outage + link->queued_packets();
      if (qs.dequeued_packets != link_accounted) {
        std::ostringstream oss;
        oss << where << " egress " << disc.label() << ": dequeued "
            << qs.dequeued_packets << " != link sent " << ls.packets_sent
            << " + drops "
            << (link_accounted - ls.packets_sent - link->queued_packets())
            << " + in-flight " << link->queued_packets();
        add_violation(out, oss.str());
      }
    }
    const topo::RouterStats& rs = router->stats();
    if (rs.forwarded != enqueued || offered != rs.forwarded + rs.dropped_queue) {
      std::ostringstream oss;
      oss << where << " router " << router->name() << ": forwarded "
          << rs.forwarded << " / dropped_queue " << rs.dropped_queue
          << " vs egress offered " << offered << " / enqueued " << enqueued;
      add_violation(out, oss.str());
    }
  }
}

/// Registry counters may only grow. Keeps just the previous epoch's counter
/// map, so the sweep is O(counters) in space regardless of run length.
void check_monotonic(SoakResult& out, const obs::Snapshot& prev,
                     const obs::Snapshot& cur, const std::string& where) {
  for (const auto& [name, value] : prev.counters) {
    const auto it = cur.counters.find(name);
    const std::uint64_t now_value = it == cur.counters.end() ? 0 : it->second;
    if (now_value < value) {
      std::ostringstream oss;
      oss << where << " counter " << name << " went backwards: " << value
          << " -> " << now_value;
      add_violation(out, oss.str());
    }
  }
}

}  // namespace

SoakResult run_soak(const SoakConfig& config,
                    const content::MicroscapeSite& site) {
  SoakResult out;

  WorkloadConfig wc;
  wc.num_clients = config.num_clients;
  wc.arrivals = config.arrivals;
  wc.mean_interarrival = config.mean_interarrival;
  wc.access = config.access;
  wc.topology = config.topology == TopologyKind::kStar
                    ? TopologyKind::kDumbbellRedundant  // soak is topo-level
                    : config.topology;
  wc.failover = config.failover;
  wc.bottleneck_bandwidth_bps = config.bottleneck_bandwidth_bps;
  wc.bottleneck_delay = config.bottleneck_delay;
  wc.bottleneck_queue_packets = config.bottleneck_queue_packets;
  wc.bottleneck_queue = config.bottleneck_queue;
  wc.server = config.server;
  wc.client = config.client;
  wc.master_seed = config.master_seed;
  wc.horizon = config.horizon;
  wc.drain = config.drain;
  wc.verify_cache = config.verify_cache;
  wc.threads = config.threads;
  wc.shards = config.shards;

  // Arm whatever recovery knob the caller left at "hang forever" — the soak
  // contract is that every client reaches a verdict.
  if (wc.client.max_attempts == 0) wc.client.max_attempts = 8;
  if (wc.client.request_deadline == 0) wc.client.request_deadline = sim::seconds(10);
  if (wc.client.page_deadline == 0) wc.client.page_deadline = config.horizon;
  if (wc.client.retry_backoff == 0) wc.client.retry_backoff = sim::milliseconds(100);
  wc.client.retry_server_errors = true;

  // Flap events become outage windows on the primary bottleneck pair; the
  // link layer sorts them and rejects overlap with a clear error.
  std::vector<net::OutageWindow> flaps;
  for (const TopoFaultEvent& ev : config.timeline) {
    if (ev.kind != TopoFaultKind::kBottleneckFlap) continue;
    flaps.push_back({ev.at, ev.at + ev.duration});
  }
  if (!flaps.empty()) {
    wc.mutate_bottleneck = [flaps](net::LinkConfig& link) {
      link.outages.insert(link.outages.end(), flaps.begin(), flaps.end());
    };
  }

  net::PacketTrace hop_trace;
  if (!config.failing_artifact_prefix.empty()) wc.hop_trace = &hop_trace;

  // Crash and wedge events are scheduled against the live topology; the
  // pointer is only valid inside run_workload, which is also the only place
  // the epoch oracles run.
  const topo::Topology* live_topo = nullptr;
  wc.on_topology = [&](topo::Topology& topo, sim::EventQueue& queue) {
    live_topo = &topo;
    for (const TopoFaultEvent& ev : config.timeline) {
      switch (ev.kind) {
        case TopoFaultKind::kBottleneckFlap:
          break;  // armed via mutate_bottleneck above
        case TopoFaultKind::kRouterCrash: {
          topo::Router* router = topo.router(ev.target);
          if (router == nullptr) {
            add_violation(out, "timeline: unknown router '" + ev.target + "'");
            break;
          }
          router->schedule_crash(ev.at, ev.at + ev.duration);
          break;
        }
        case TopoFaultKind::kQueueWedge: {
          const net::Link* link = topo.link(ev.target);
          topo::Router* owner = nullptr;
          std::size_t index = 0;
          if (link != nullptr) {
            for (const auto& router : topo.routers()) {
              for (std::size_t i = 0; i < router->egress_count(); ++i) {
                if (router->egress_link(i) == link) {
                  owner = router.get();
                  index = i;
                }
              }
            }
          }
          if (owner == nullptr) {
            add_violation(out,
                          "timeline: no egress feeds link '" + ev.target + "'");
            break;
          }
          queue.schedule_at(
              ev.at, [owner, index] { owner->set_egress_wedged(index, true); });
          queue.schedule_at(ev.at + ev.duration, [owner, index] {
            owner->set_egress_wedged(index, false);
          });
          break;
        }
      }
    }
  };

  obs::Snapshot prev_epoch;
  bool have_prev = false;
  wc.epoch = config.epoch;
  wc.on_epoch = [&] {
    ++out.epochs_checked;
    const std::string where = "epoch " + std::to_string(out.epochs_checked);
    if (live_topo != nullptr) check_conservation(out, *live_topo, where);
    if (obs::Registry* reg = obs::registry()) {
      obs::Snapshot cur = reg->snapshot();
      if (have_prev) check_monotonic(out, prev_epoch, cur, where);
      prev_epoch = std::move(cur);
      have_prev = true;
    }
  };

  out.workload = run_workload(wc, site);
  live_topo = nullptr;  // died with run_workload's stack frame

  for (const ClientOutcome& c : out.workload.clients) {
    out.retries += c.stats.retries;
    out.retry_tokens_consumed += c.stats.retry_tokens_consumed;
    out.retry_tokens_refunded += c.stats.retry_tokens_refunded;
    out.retry_budget_exhausted += c.stats.retry_budget_exhausted;
    out.retry_after_honored += c.stats.retry_after_honored;
    out.body_bytes += c.stats.body_bytes;
    if (!c.resolved) {
      add_violation(out, "client " + std::to_string(c.id) +
                             " never reached a verdict");
    }
    if (c.stats.requests_failed != c.stats.failures.size()) {
      add_violation(out, "client " + std::to_string(c.id) + ": " +
                             std::to_string(c.stats.requests_failed) +
                             " failed requests but " +
                             std::to_string(c.stats.failures.size()) +
                             " attributions");
    }
  }
  out.failovers = out.workload.metrics.counter("topo.router.failovers");
  out.failbacks = out.workload.metrics.counter("topo.router.failbacks");
  out.router_crash_flushed =
      out.workload.metrics.counter("topo.router.crash_flushed");
  out.router_dropped_crashed =
      out.workload.metrics.counter("topo.router.dropped_crashed");

  if (!out.ok() && !config.failing_artifact_prefix.empty()) {
    net::write_file(config.failing_artifact_prefix + ".failing.trace",
                    net::trace_to_text(hop_trace.records()));
    net::write_file(config.failing_artifact_prefix + ".metrics.txt",
                    out.workload.metrics.dump_text());
  }
  return out;
}

}  // namespace hsim::harness
