// Experiment runner: wires a Robot and an HttpServer across a simulated
// channel, runs the paper's two scenarios, and reports the four quantities
// of the paper's tables (Pa, Bytes, Sec, %ov) plus richer diagnostics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "client/robot.hpp"
#include "content/microscape.hpp"
#include "harness/network.hpp"
#include "net/trace.hpp"
#include "obs/metrics.hpp"
#include "server/config.hpp"
#include "server/server.hpp"

namespace hsim::harness {

enum class Scenario { kFirstVisit, kRevalidation };
std::string_view to_string(Scenario s);

struct ExperimentSpec {
  NetworkProfile network = lan_profile();
  server::ServerConfig server = server::jigsaw_config();
  client::ClientConfig client;
  Scenario scenario = Scenario::kFirstVisit;
  std::uint64_t seed = 1;
  /// Time-varying link profile overlaid on the channel (netem subsystem):
  /// "flat", a built-in name ("3g-drive", "4g-walk", "lte-stationary",
  /// "wifi-congested") or a profiles/*.netem file path. Empty consults the
  /// HSIM_PROFILE environment variable; still empty = the legacy static
  /// channel. Applied after mutate_channel, so chaos regimes compose.
  std::string profile;
  /// Optional: factory producing a payload sizer per link direction (the
  /// modem-compression model; each direction gets its own dictionary, as
  /// the two modems of a dialup pair do).
  std::function<net::Link::PayloadSizer()> make_link_sizer;
  /// Optional: edit the channel configuration after the network profile has
  /// produced it but before the links are built. This is how fault
  /// injection (bursty loss, outages, duplication, corruption, reordering)
  /// is layered onto any experiment; see harness/chaos.hpp.
  std::function<void(net::ChannelConfig&)> mutate_channel;
  /// Optional: called with the robot after the measured run drains, before
  /// teardown. Lets callers inspect state RunResult does not carry — e.g.
  /// comparing the populated cache byte-for-byte against the source site.
  std::function<void(client::Robot&)> inspect_robot;
  /// Optional: called with the packet trace after the measured run drains.
  /// This is how golden-trace capture and the hsim-trace CLI get at the raw
  /// per-packet records rather than the summary.
  std::function<void(const net::PacketTrace&)> inspect_trace;
  /// Optional: handed the run's metrics registry before teardown, so callers
  /// can aggregate counters/histograms across runs.
  obs::MetricsSink* metrics_sink = nullptr;
  /// Record per-connection TCP timelines (state transitions, cwnd moves,
  /// segment sends/receives). Off by default: timelines allocate.
  bool conn_timelines = false;
  /// Parallel engine selector, mirroring WorkloadConfig::threads: 0 = the
  /// classic single-queue driver (HSIM_THREADS may promote it), >= 1 = the
  /// two-shard engine (client shard / server shard) with that many worker
  /// threads. The shard count is fixed at 2, so every threads >= 1 value is
  /// byte-identical. Timeline capture (conn_timelines) stays per-shard in
  /// sharded runs: the merged snapshot carries no timelines.
  unsigned threads = 0;
};

struct RunResult {
  net::TraceSummary trace;  // rebuilt from the run's metrics registry
  client::RobotStats robot;
  server::ServerStats server;
  /// Full plain-value copy of every metric the run registered; outlives the
  /// registry (which dies with run_once's stack frame).
  obs::Snapshot metrics;
  std::uint64_t connections_used = 0;       // client sockets opened
  std::size_t max_parallel_connections = 0;
  double mean_packet_train = 0.0;
  std::vector<std::size_t> packet_trains;
  /// Page bounds read back from the client.page_*_ns registry gauges; the
  /// robot sets the gauges at the same instants it stamps RobotStats, so
  /// seconds() is bit-identical to robot.elapsed_seconds().
  sim::Time page_started = 0;
  sim::Time page_finished = 0;

  double packets() const { return static_cast<double>(trace.packets); }
  double bytes() const { return static_cast<double>(trace.wire_bytes); }
  double seconds() const { return sim::to_seconds(page_finished - page_started); }
  double overhead_percent() const { return trace.overhead_percent; }
};

/// Runs one measured scenario. For kRevalidation an unmeasured first visit
/// warms the cache before counters are reset — exactly the paper's protocol.
RunResult run_once(const ExperimentSpec& spec,
                   const content::MicroscapeSite& site);

/// Mean over `runs` seeded repetitions (the paper used 5).
struct AveragedResult {
  double packets = 0;
  double bytes = 0;
  double seconds = 0;
  double overhead_percent = 0;
  double packets_c2s = 0;
  double packets_s2c = 0;
  double connections = 0;
  double mean_packet_train = 0;
  bool all_complete = true;
};

AveragedResult run_averaged(const ExperimentSpec& spec,
                            const content::MicroscapeSite& site,
                            unsigned runs = 5);

/// The Microscape site is expensive to synthesize; benches and tests share
/// one instance.
const content::MicroscapeSite& shared_site();

/// The same page under the modern content axis (WebP/AVIF-class image
/// payloads, see content::modernize_site); cached per codec.
const content::MicroscapeSite& shared_modern_site(
    content::ModernCodec codec = content::ModernCodec::kWebP);

/// Client configuration presets matching the paper's four protocol rows.
client::ClientConfig robot_config(client::ProtocolMode mode);

/// Browser emulations for Tables 10/11.
/// Navigator 4.0b5: HTTP/1.0 + Keep-Alive over 4 connections, date-based
/// revalidation.
client::ClientConfig netscape_client_config();
/// MSIE 4.0b1: HTTP/1.1 persistent (no pipelining) over 4 connections,
/// verbose headers. `broken_revalidation` reproduces the Table 10 behaviour
/// against Jigsaw, where the beta refetched the page and HEAD-validated
/// images instead of sending conditional GETs.
client::ClientConfig msie_client_config(bool broken_revalidation);

}  // namespace hsim::harness
