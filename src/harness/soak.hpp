// Deterministic chaos-soak harness.
//
// run_soak drives N clients through a dumbbell (by default the redundant
// dumbbell with forwarding-table failover) while a scripted multi-fault
// timeline hits the topology itself: router crashes that flush queued
// packets, bottleneck egress flaps through the link outage machinery, and
// queue-discipline wedges that fill and overflow a buffer without the link
// ever looking down. Every `epoch` of simulated time a set of invariant
// oracles walks the live topology:
//
//   - queue conservation, admission side:  offered == enqueued + dropped
//   - queue conservation, service side:    enqueued == dequeued +
//                                          dropped_flushed + depth
//   - link conservation per router egress: dequeued == sent + every drop
//                                          bucket + packets still queued
//   - router accounting: forwarded == sum of egress enqueues
//   - registry monotonicity: no counter ever decreases between epochs
//
// and after the drain the harness checks that every client reached a verdict,
// every permanently-failed request carries a failure attribution, and no
// connection leaked on either side. Everything is deterministic for a given
// master seed — two runs of the same SoakConfig produce identical results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/workload.hpp"

namespace hsim::harness {

enum class TopoFaultKind {
  /// Router `target` crashes at `at` (forwarding halts, queued packets are
  /// flushed with attribution) and restarts `duration` later.
  kRouterCrash,
  /// The primary bottleneck pair goes physically down for [at, at+duration)
  /// via net::LinkConfig::outages; with failover configured the routers
  /// reroute onto the backup pair after the detection delay. `target` unused.
  kBottleneckFlap,
  /// The egress feeding link `target` (e.g. "bnA.up") stops being pumped:
  /// its discipline keeps accepting until it overflows, then drains when the
  /// wedge lifts `duration` later.
  kQueueWedge,
};
std::string_view to_string(TopoFaultKind kind);

struct TopoFaultEvent {
  TopoFaultKind kind = TopoFaultKind::kBottleneckFlap;
  /// Router name for kRouterCrash ("gate"/"core"), link name for kQueueWedge
  /// ("bnA.up", ...); ignored for kBottleneckFlap.
  std::string target;
  sim::Time at = 0;
  sim::Time duration = sim::seconds(1);
};

struct SoakConfig {
  unsigned num_clients = 100;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  sim::Time mean_interarrival = sim::milliseconds(50);
  NetworkProfile access = lan_profile();

  /// Must be a dumbbell shape; the redundant dumbbell is the default so
  /// crash/flap faults exercise failover and failback.
  TopologyKind topology = TopologyKind::kDumbbellRedundant;
  topo::FailoverSpec failover;

  std::int64_t bottleneck_bandwidth_bps = 10'000'000;
  sim::Time bottleneck_delay = sim::milliseconds(10);
  std::size_t bottleneck_queue_packets = 256;
  topo::QueueConfig bottleneck_queue;

  /// The scripted faults. Flap windows must not overlap each other (the link
  /// layer rejects overlapping outage windows with a clear error).
  std::vector<TopoFaultEvent> timeline;

  /// Oracle cadence. 0 disables the per-epoch sweep (terminal checks still
  /// run).
  sim::Time epoch = sim::seconds(5);

  server::ServerConfig server;
  /// Protocol mode, budgets and jitter come from the caller; run_soak arms
  /// any recovery knob still at its "hang forever" default (attempts,
  /// deadlines, backoff, 5xx retry) so the run always terminates.
  client::ClientConfig client;

  std::uint64_t master_seed = 1;
  sim::Time horizon = sim::seconds(120);
  sim::Time drain = sim::seconds(60);
  bool verify_cache = false;

  /// Parallel engine selector, passed through to WorkloadConfig::threads.
  /// The epoch oracles are shard-aware: they fire at engine barriers with
  /// every worker parked, against a registry merged in shard order, so the
  /// soak stays green at any thread count.
  unsigned threads = 0;
  std::size_t shards = 0;  // WorkloadConfig::shards passthrough

  /// When non-empty, a failing run writes "<prefix>.failing.trace" (the
  /// multi-hop packet trace) and "<prefix>.metrics.txt" (the registry dump)
  /// for postmortem upload. Capturing the hop trace costs memory — leave
  /// empty for the N=1000 runs.
  std::string failing_artifact_prefix;
};

struct SoakResult {
  WorkloadResult workload;

  unsigned epochs_checked = 0;
  /// Human-readable oracle violations, capped at kMaxViolations (further
  /// ones only bump violations_suppressed).
  std::vector<std::string> violations;
  std::uint64_t violations_suppressed = 0;
  static constexpr std::size_t kMaxViolations = 64;

  // Recovery economics, summed over every client.
  std::uint64_t retries = 0;  // duplicate-request volume
  std::uint64_t retry_tokens_consumed = 0;
  std::uint64_t retry_tokens_refunded = 0;
  std::uint64_t retry_budget_exhausted = 0;
  std::uint64_t retry_after_honored = 0;
  std::uint64_t body_bytes = 0;  // goodput numerator

  // Topology recovery counters (registry topo.router.*).
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t router_crash_flushed = 0;
  std::uint64_t router_dropped_crashed = 0;

  /// Every oracle green, every client resolved and attributed, no leaks.
  bool ok() const;
};

/// A representative multi-fault timeline: a long primary flap (drives
/// failover + failback), a gate crash, a bnA.up queue wedge, and a second
/// flap — spaced so recovery from each is observable before the next hits.
std::vector<TopoFaultEvent> default_soak_timeline();

SoakResult run_soak(const SoakConfig& config,
                    const content::MicroscapeSite& site);

}  // namespace hsim::harness
