// Chaos harness: named fault regimes layered onto any experiment.
//
// Each ChaosFault names one end-to-end failure mode — bursty link loss, a
// link outage, a wedged or dying server, a 5xx storm — expressed through the
// fault-injection knobs of the individual layers (net::LinkConfig,
// server::ServerFaults, client::ClientConfig). apply_chaos() installs the
// fault AND hardens the client so the retrieval always resolves: either the
// recovery machinery delivers every byte, or the run ends with structured,
// attributed failures. It never hangs.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"

namespace hsim::harness {

enum class ChaosFault {
  kNone,            // control: no fault, recovery knobs still armed
  kBurstLoss,       // Gilbert-Elliott bursty loss, both directions
  kOutage,          // one multi-second link outage mid-retrieval
  kLinkFlaps,       // repeated short outages
  kDuplication,     // random packet duplication
  kReordering,      // bounded packet reordering
  kCorruption,      // payload corruption, dropped at the receiver
  kServerStall,     // server wedges mid-response, connection left open
  kPrematureClose,  // server discards its buffer and closes mid-response
  kServerErrors,    // transient 500 storm
};
std::string_view to_string(ChaosFault fault);

/// Every fault regime except kNone, for exhaustive iteration.
std::vector<ChaosFault> all_chaos_faults();

/// Installs `fault` into `spec` (channel mutation and/or server faults) and
/// arms the client-side recovery knobs (deadlines, bounded retries with
/// backoff, 5xx retry) so the run terminates under every regime.
void apply_chaos(ChaosFault fault, ExperimentSpec& spec);

/// True iff `cache` holds the root document and every site image with
/// byte-identical bodies — the retrieval survived the fault unscathed.
bool cache_matches_site(const client::Cache& cache,
                        const content::MicroscapeSite& site,
                        const std::string& root = "/index.html");

struct ChaosOutcome {
  RunResult result;
  bool byte_exact = false;  // cache_matches_site after the run
};

/// Runs one first-visit retrieval of `site` under `fault` with protocol
/// `mode` on the WAN profile. Deterministic for a given seed.
///
/// `topology` selects the substrate: kStar is the legacy single-channel
/// run_once path (byte-exact with earlier builds); kDumbbell and
/// kDumbbellRedundant drive the same fault regime through the router /
/// queue-discipline topologies, with the channel mutation applied to the
/// client's access leg. Every regime terminates on every substrate.
ChaosOutcome run_chaos(ChaosFault fault, client::ProtocolMode mode,
                       const content::MicroscapeSite& site,
                       std::uint64_t seed = 1,
                       TopologyKind topology = TopologyKind::kStar);

}  // namespace hsim::harness
