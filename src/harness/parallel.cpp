#include "harness/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/chaos.hpp"
#include "net/channel.hpp"
#include "net/link.hpp"
#include "server/static_site.hpp"
#include "sim/shard.hpp"
#include "topo/topology.hpp"

namespace hsim::harness {

namespace {

constexpr net::IpAddr kWorkloadServerAddr = 1;
net::IpAddr workload_client_addr(unsigned i) { return 1000 + i; }

/// Same aggregation points as the classic star driver (workload.cpp); the
/// sharded driver re-declares them because they are file-local there.
struct Funnel : net::PacketSink {
  net::Link* bottleneck = nullptr;
  void deliver(net::Packet packet) override {
    bottleneck->transmit(std::move(packet));
  }
};

struct Fanout : net::PacketSink {
  std::map<net::IpAddr, net::Link*> routes;
  void deliver(net::Packet packet) override {
    if (auto it = routes.find(packet.dst); it != routes.end()) {
      it->second->transmit(std::move(packet));
    }
  }
};

// Engine lookahead uses net::config_min_latency (found by ADL below):
// identical to net::Link::min_remote_latency(), usable before any link
// exists (the engine needs its lookahead before the queues it carries).
// Netem dynamics only ever raise the bound (minimum extra segment latency).

/// Routes a link's deliveries across the shard boundary: the sink runs on
/// `dst` at the link-computed arrival time, everything else stays put. The
/// sink pointer is captured now — callers wire sinks before hooks.
void cross_deliver(sim::ShardedEngine& engine, std::size_t dst,
                   net::Link& link) {
  net::PacketSink* sink = link.sink();
  link.set_remote_deliver(
      [&engine, dst, sink](sim::Time when, net::Packet packet) {
        engine.post(dst, when, [sink, p = std::move(packet)]() mutable {
          sink->deliver(std::move(p));
        });
      });
}

}  // namespace

unsigned threads_from_env() {
  const char* env = std::getenv("HSIM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return 0;
  return static_cast<unsigned>(std::min(v, 1024ul));
}

sim::Time workload_lookahead(const WorkloadConfig& config) {
  net::ChannelConfig access = config.access.channel_config();
  if (config.mutate_access) config.mutate_access(access);
  apply_profile_overlay(config.profile, access);
  if (config.topology == TopologyKind::kStar) {
    // Crossing links: every client uplink (a_to_b) into the funnel, and the
    // bottleneck downlink fanning out to the client shards.
    net::LinkConfig bn;
    bn.propagation_delay = config.bottleneck_delay;
    return std::min(config_min_latency(access.a_to_b),
                    config_min_latency(bn));
  }
  // Dumbbell shapes: only the client access legs cross (uplink into the gate
  // router, gate's fan-out egress back to the client host); routers and the
  // bottleneck pair(s) are wholly shard-0.
  return std::min(config_min_latency(access.a_to_b),
                  config_min_latency(access.b_to_a));
}

sim::Time run_once_lookahead(const ExperimentSpec& spec) {
  net::ChannelConfig channel = spec.network.channel_config();
  if (spec.mutate_channel) spec.mutate_channel(channel);
  apply_profile_overlay(spec.profile, channel, "access");
  return std::min(config_min_latency(channel.a_to_b),
                  config_min_latency(channel.b_to_a));
}

// ---------------------------------------------------------------------------
// run_workload_sharded
// ---------------------------------------------------------------------------

WorkloadResult run_workload_sharded(const WorkloadConfig& config,
                                    const content::MicroscapeSite& site,
                                    unsigned threads) {
  const unsigned n = config.num_clients;
  const bool redundant = config.topology == TopologyKind::kDumbbellRedundant;
  const bool dumbbell = config.topology != TopologyKind::kStar;
  const std::vector<std::string> bn_links =
      redundant
          ? std::vector<std::string>{"bnA.up", "bnA.down", "bnB.up", "bnB.down"}
          : std::vector<std::string>{"bn.up", "bn.down"};

  net::ChannelConfig access = config.access.channel_config();
  if (config.mutate_access) config.mutate_access(access);
  apply_profile_overlay(config.profile, access);

  // Fixed partition: shard 0 = server + shared infrastructure, clients
  // round-robin over the remaining S-1 shards. S comes from config, never
  // from the thread count, so results are thread-count invariant.
  const std::size_t S =
      config.shards != 0
          ? std::max<std::size_t>(2, config.shards)
          : 1 + std::min<std::size_t>(n, 8);
  const auto shard_of_client = [S](unsigned i) -> std::size_t {
    return 1 + (i % (S - 1));
  };

  sim::ShardedEngine engine(
      {S, threads, workload_lookahead(config)});
  engine.queue(0).reserve(64 + 16 * static_cast<std::size_t>(n) / S);

  // One registry per shard; each worker installs its shard's registry before
  // running a slice (the obs registry pointer is thread-local). `master` is
  // the merge target and the ambient registry outside slices.
  obs::Registry master;
  std::vector<std::unique_ptr<obs::Registry>> regs;
  regs.reserve(S);
  for (std::size_t s = 0; s < S; ++s) {
    regs.push_back(std::make_unique<obs::Registry>());
  }
  obs::ScopedRegistry scoped(&master);
  engine.set_shard_enter(
      [&regs](std::size_t s) { obs::set_registry(regs[s].get()); });

  // ---- Shared side (shard 0), exactly the classic construction order ----
  obs::set_registry(regs[0].get());
  sim::Rng server_rng(derive_seed(config.master_seed, kServerSeedSalt));
  tcp::Host server_host(engine.queue(0), kWorkloadServerAddr, "server",
                        server_rng.fork());

  net::TraceSummarizer bottleneck_trace(kWorkloadServerAddr);
  sim::EventQueue& queue0 = engine.queue(0);
  const auto tap = [&bottleneck_trace, &queue0](const net::Packet& p) {
    bottleneck_trace.record(queue0.now(), p);
  };

  std::vector<std::unique_ptr<tcp::Host>> hosts;
  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<client::Robot>> robots;
  hosts.reserve(n);
  robots.reserve(n);

  client::ClientConfig client_template = config.client;
  client_template.tcp.recv_buffer = std::min(
      client_template.tcp.recv_buffer, config.access.client_recv_buffer);
  server::ServerConfig server_config = config.server;
  if (config.cc) {
    client_template.tcp.cc = *config.cc;
    server_config.tcp.cc = *config.cc;
  }
  const auto client_config_for = [&](unsigned i) {
    client::ClientConfig cc = client_template;
    if (cc.retry_jitter > 0.0 && cc.retry_jitter_seed == 0) {
      cc.retry_jitter_seed = derive_seed(config.master_seed, kRetrySeedSalt + i);
    }
    return cc;
  };

  std::unique_ptr<net::Link> bottleneck_up;
  std::unique_ptr<net::Link> bottleneck_down;
  Funnel funnel;
  Fanout fanout;
  topo::Topology topo;
  std::unique_ptr<server::HttpServer> server;

  if (!dumbbell) {
    net::LinkConfig bn_cfg;
    bn_cfg.bandwidth_bps = config.bottleneck_bandwidth_bps;
    bn_cfg.propagation_delay = config.bottleneck_delay;
    bn_cfg.queue_limit_packets = config.bottleneck_queue_packets;
    bottleneck_up =
        std::make_unique<net::Link>(queue0, bn_cfg, server_rng.fork());
    bottleneck_down =
        std::make_unique<net::Link>(queue0, bn_cfg, server_rng.fork());
    bottleneck_up->set_tap(tap);
    bottleneck_down->set_tap(tap);

    funnel.bottleneck = bottleneck_up.get();
    bottleneck_up->set_sink(&server_host);
    bottleneck_down->set_sink(&fanout);
    server_host.attach_uplink(bottleneck_down.get());

    server = std::make_unique<server::HttpServer>(
        server_host, server::StaticSite::from_microscape(site), server_config,
        server_rng.fork());
    server->start(80);

    links.reserve(2 * static_cast<std::size_t>(n));
    for (unsigned i = 0; i < n; ++i) {
      const std::size_t cs = shard_of_client(i);
      obs::set_registry(regs[cs].get());
      sim::EventQueue& cq = engine.queue(cs);
      sim::Rng crng(derive_seed(config.master_seed, kClientSeedSalt + i));
      auto host = std::make_unique<tcp::Host>(
          cq, workload_client_addr(i), "client" + std::to_string(i),
          crng.fork());
      auto up = std::make_unique<net::Link>(cq, access.a_to_b, crng.fork());
      auto down = std::make_unique<net::Link>(cq, access.b_to_a, crng.fork());
      up->set_sink(&funnel);
      cross_deliver(engine, 0, *up);
      down->set_sink(host.get());
      fanout.routes[workload_client_addr(i)] = down.get();
      host->attach_uplink(up.get());
      robots.push_back(std::make_unique<client::Robot>(*host,
                                                       kWorkloadServerAddr, 80,
                                                       client_config_for(i)));
      hosts.push_back(std::move(host));
      links.push_back(std::move(up));
      links.push_back(std::move(down));
    }
    // The bottleneck downlink fans out per packet: deliveries cross to the
    // destination client's shard, where Fanout's (read-only by now) route
    // table hands the packet to that client's own downlink.
    obs::set_registry(regs[0].get());
    net::Link* bn_down = bottleneck_down.get();
    bn_down->set_remote_deliver([&engine, &fanout, &shard_of_client, n](
                                    sim::Time when, net::Packet packet) {
      const bool known = packet.dst >= 1000 && packet.dst < 1000 + n;
      const std::size_t dst =
          known ? shard_of_client(static_cast<unsigned>(packet.dst - 1000))
                : 0;
      engine.post(dst, when, [&fanout, p = std::move(packet)]() mutable {
        fanout.deliver(std::move(p));
      });
    });
  } else {
    std::vector<tcp::Host*> client_hosts;
    client_hosts.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      const std::size_t cs = shard_of_client(i);
      obs::set_registry(regs[cs].get());
      sim::Rng crng(derive_seed(config.master_seed, kClientSeedSalt + i));
      hosts.push_back(std::make_unique<tcp::Host>(
          engine.queue(cs), workload_client_addr(i),
          "client" + std::to_string(i), crng.fork()));
      client_hosts.push_back(hosts.back().get());
    }
    obs::set_registry(regs[0].get());

    topo::BottleneckSpec spec;
    spec.bandwidth_bps = config.bottleneck_bandwidth_bps;
    spec.delay = config.bottleneck_delay;
    spec.queue = config.bottleneck_queue;
    spec.queue.drop_tail.limit_packets = config.bottleneck_queue_packets;
    spec.queue.red.limit_packets = config.bottleneck_queue_packets;
    spec.mutate_link = config.mutate_bottleneck;

    topo::TopologyBuilder builder(
        queue0, sim::Rng(derive_seed(config.master_seed, kTopoSeedSalt)));
    builder.set_uplink_placement(
        [&](std::size_t i) -> topo::TopologyBuilder::UplinkPlacement {
          const std::size_t cs = shard_of_client(static_cast<unsigned>(i));
          return {&engine.queue(cs), regs[cs].get()};
        });
    topo = redundant ? builder.dumbbell_redundant(client_hosts, &server_host,
                                                  access, spec, config.failover)
                     : builder.dumbbell(client_hosts, &server_host, access,
                                        spec);
    for (const std::string& name : bn_links) topo.link(name)->set_tap(tap);
    if (config.hop_trace) topo.set_hop_trace(config.hop_trace);
    if (config.on_topology) config.on_topology(topo, queue0);

    server = std::make_unique<server::HttpServer>(
        server_host, server::StaticSite::from_microscape(site), server_config,
        server_rng.fork());
    server->start(80);

    // Shard crossings: each uplink delivers into the gate router on shard 0;
    // each downlink (a shard-0 gate egress) delivers back to its client.
    for (unsigned i = 0; i < n; ++i) {
      const std::string base = "client" + std::to_string(i);
      cross_deliver(engine, 0, *topo.link(base + ".up"));
      cross_deliver(engine, shard_of_client(i), *topo.link(base + ".down"));
    }

    for (unsigned i = 0; i < n; ++i) {
      obs::set_registry(regs[shard_of_client(i)].get());
      robots.push_back(std::make_unique<client::Robot>(
          *hosts[i], kWorkloadServerAddr, 80, client_config_for(i)));
    }
  }
  obs::set_registry(&master);

  // ---- Arrival process (identical draws; scheduled per client shard) ----
  sim::Rng arrival_rng(derive_seed(config.master_seed, kArrivalSeedSalt));
  std::vector<sim::Time> arrivals(n, 0);
  sim::Time t = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (config.arrivals == ArrivalProcess::kFixedInterval) {
      arrivals[i] = static_cast<sim::Time>(i) * config.mean_interarrival;
    } else {
      const double u = arrival_rng.uniform_real(0.0, 1.0);
      t += static_cast<sim::Time>(
          -static_cast<double>(config.mean_interarrival) * std::log1p(-u));
      arrivals[i] = t;
    }
  }

  std::vector<char> resolved(n, 0);
  for (unsigned i = 0; i < n; ++i) {
    engine.queue(shard_of_client(i)).schedule_at(arrivals[i], [&, i] {
      robots[i]->start_first_visit(config.root,
                                   [&resolved, i] { resolved[i] = 1; });
    });
  }

  if (config.epoch > 0 && config.on_epoch) {
    // Oracles fire at barriers with every worker parked, against a scratch
    // registry merged in shard order — so walking topology state is safe and
    // counter monotonicity holds epoch over epoch.
    engine.set_epochs(config.epoch, config.horizon, [&](sim::Time) {
      obs::Registry epoch_view;
      for (const auto& reg : regs) epoch_view.merge_from(*reg);
      obs::ScopedRegistry in_epoch(&epoch_view);
      config.on_epoch();
    });
  }

  std::size_t events = engine.run_until(config.horizon);
  events += engine.run_until(engine.now() + config.drain);
  obs::set_registry(&master);
  for (const auto& reg : regs) master.merge_from(*reg);

  // ---- Collect (identical to the classic driver, reading the merge) ----
  WorkloadResult result;
  result.events_executed = events;
  result.clients.resize(n);
  const obs::HistogramHandle page_ms =
      obs::histogram_handle("workload.page_ms");
  for (unsigned i = 0; i < n; ++i) {
    ClientOutcome& out = result.clients[i];
    out.id = i;
    out.arrival = arrivals[i];
    out.resolved = resolved[i] != 0;
    out.stats = robots[i]->stats();
    out.leaked_connections = hosts[i]->open_connections();
    if (out.complete()) {
      page_ms.observe(
          static_cast<std::uint64_t>(out.page_seconds() * 1000.0));
    }
    if (config.verify_cache && out.stats.complete) {
      out.byte_exact =
          cache_matches_site(robots[i]->cache(), site, config.root);
    }
  }
  result.bottleneck = net::summary_from_metrics(master);
  result.bottleneck_syns = master.counter_value("trace.syn_packets");
  result.tcp_retransmits = master.counter_value("tcp.retransmits");
  if (!dumbbell) {
    result.bottleneck_queue_drops =
        bottleneck_up->stats().packets_dropped_queue +
        bottleneck_down->stats().packets_dropped_queue;
  } else {
    result.bottleneck_queue_drops = topo.queue_drops();
    for (const std::string& name : bn_links) {
      result.bottleneck_queue_drops +=
          topo.link(name)->stats().packets_dropped_queue;
    }
    for (const topo::QueueDisc* q : topo.queues()) {
      if (q->label().rfind("bn", 0) != 0) continue;
      result.queues.push_back(
          QueueSummary{q->label(), std::string(q->kind()), q->stats()});
    }
  }
  result.server = server->stats();
  if (const tcp::ListenerStats* ls = server_host.listener_stats(80)) {
    result.listener = *ls;
  }
  result.server_connections_total = server_host.total_connections_created();
  result.server_max_open = server_host.max_simultaneous_connections();
  result.server_open_after_drain = server_host.open_connections();
  if (config.metrics_sink) config.metrics_sink->consume(master);
  result.metrics = master.snapshot();
  return result;
}

// ---------------------------------------------------------------------------
// run_once_sharded
// ---------------------------------------------------------------------------

namespace {
constexpr net::IpAddr kOnceClientAddr = 1;
constexpr net::IpAddr kOnceServerAddr = 2;
constexpr net::Port kOnceHttpPort = 80;

/// A tap record tagged with the executing event's full key, so two shards'
/// interleaved tap streams merge back into the one canonical order the
/// single-queue driver would have produced.
struct KeyedRecord {
  sim::EventKey key;
  sim::Time time = 0;
  net::Packet packet;
};
}  // namespace

RunResult run_once_sharded(const ExperimentSpec& spec,
                           const content::MicroscapeSite& site,
                           unsigned threads) {
  // Shard 0 = client side, shard 1 = server side. The master registry is
  // the merge target; trace.* metrics are produced at replay time below.
  obs::Registry master;
  std::unique_ptr<obs::Registry> regs[2] = {
      std::make_unique<obs::Registry>(), std::make_unique<obs::Registry>()};
  if (spec.conn_timelines) {
    for (auto& r : regs) r->enable_timelines();
  }
  obs::ScopedRegistry scoped(&master);

  net::ChannelConfig channel_config = spec.network.channel_config();
  if (spec.mutate_channel) spec.mutate_channel(channel_config);
  apply_profile_overlay(spec.profile, channel_config, "access");

  sim::ShardedEngine engine({2, threads, run_once_lookahead(spec)});
  engine.set_shard_enter(
      [&regs](std::size_t s) { obs::set_registry(regs[s].get()); });

  sim::Rng rng(spec.seed);

  // The classic driver builds a net::Channel, whose constructor forks the
  // channel rng for a_to_b then b_to_a; replicate that exact order while
  // splitting the two links across the shards of their transmitters.
  sim::Rng channel_rng = rng.fork();
  std::unique_ptr<net::Link> a_to_b;  // client -> server, client shard
  std::unique_ptr<net::Link> b_to_a;  // server -> client, server shard
  {
    obs::ScopedRegistry r0(regs[0].get());
    a_to_b = std::make_unique<net::Link>(engine.queue(0),
                                         channel_config.a_to_b,
                                         channel_rng.fork());
  }
  {
    obs::ScopedRegistry r1(regs[1].get());
    b_to_a = std::make_unique<net::Link>(engine.queue(1),
                                         channel_config.b_to_a,
                                         channel_rng.fork());
  }

  obs::set_registry(regs[0].get());
  tcp::Host client_host(engine.queue(0), kOnceClientAddr, "client",
                        rng.fork());
  obs::set_registry(regs[1].get());
  tcp::Host server_host(engine.queue(1), kOnceServerAddr, "server",
                        rng.fork());

  a_to_b->set_sink(&server_host);
  cross_deliver(engine, 1, *a_to_b);
  b_to_a->set_sink(&client_host);
  cross_deliver(engine, 0, *b_to_a);
  client_host.attach_uplink(a_to_b.get());
  server_host.attach_uplink(b_to_a.get());
  if (spec.make_link_sizer) {
    a_to_b->set_payload_sizer(spec.make_link_sizer());
    b_to_a->set_payload_sizer(spec.make_link_sizer());
  }

  // Taps record into per-shard streams (with keys) instead of a live
  // PacketTrace; the streams are merged and replayed after the run.
  bool tracing = false;
  std::vector<KeyedRecord> taps[2];
  a_to_b->set_tap([&](const net::Packet& p) {
    if (tracing) {
      taps[0].push_back({engine.queue(0).current_key(),
                         engine.queue(0).now(), p});
    }
  });
  b_to_a->set_tap([&](const net::Packet& p) {
    if (tracing) {
      taps[1].push_back({engine.queue(1).current_key(),
                         engine.queue(1).now(), p});
    }
  });

  server::HttpServer server(server_host,
                            server::StaticSite::from_microscape(site),
                            spec.server, rng.fork());
  server.start(kOnceHttpPort);

  obs::set_registry(regs[0].get());
  client::ClientConfig client_config = spec.client;
  client_config.tcp.recv_buffer = std::min(client_config.tcp.recv_buffer,
                                           spec.network.client_recv_buffer);
  client::Robot robot(client_host, kOnceServerAddr, kOnceHttpPort,
                      client_config);

  const auto run_to_completion = [&] { engine.run_until(sim::seconds(600)); };
  // The classic driver calls the robot's start synchronously; here the start
  // must run *inside* a shard-0 slice (it transmits the first SYN, and the
  // uplink's cross-shard hook needs an executing event to stamp its key).
  const auto start_on_client_shard = [&](auto start) {
    engine.queue(0).schedule_at(engine.queue(0).now(), std::move(start));
  };

  if (spec.scenario == Scenario::kRevalidation) {
    bool warm_done = false;
    start_on_client_shard(
        [&] { robot.start_first_visit("/index.html", [&] { warm_done = true; }); });
    run_to_completion();
    if (!warm_done) {
      obs::set_registry(&master);
      return RunResult{};
    }
    engine.run_until(engine.now() + sim::seconds(120));
    client_host.reset_connection_counters();
  }

  tracing = true;
  bool done = false;
  if (spec.scenario == Scenario::kFirstVisit) {
    start_on_client_shard(
        [&] { robot.start_first_visit("/index.html", [&] { done = true; }); });
  } else {
    start_on_client_shard(
        [&] { robot.start_revalidation("/index.html", [&] { done = true; }); });
  }
  run_to_completion();
  engine.run_until(engine.now() + sim::seconds(120));
  (void)done;

  // ---- Merge + replay ----
  obs::set_registry(&master);
  for (const auto& reg : regs) master.merge_from(*reg);

  net::PacketTrace trace(kOnceClientAddr);  // trace.* binds the merge target
  std::vector<KeyedRecord> merged;
  merged.reserve(taps[0].size() + taps[1].size());
  std::merge(taps[0].begin(), taps[0].end(), taps[1].begin(), taps[1].end(),
             std::back_inserter(merged),
             [](const KeyedRecord& a, const KeyedRecord& b) {
               return a.key < b.key;
             });
  for (KeyedRecord& r : merged) trace.record(r.time, std::move(r.packet));

  if (spec.inspect_robot) spec.inspect_robot(robot);
  if (spec.inspect_trace) spec.inspect_trace(trace);
  if (spec.metrics_sink) spec.metrics_sink->consume(master);

  RunResult result;
  result.trace = net::summary_from_metrics(master);
  result.metrics = master.snapshot();
  result.page_started = master.gauge_value("client.page_started_ns", 0);
  result.page_finished = master.gauge_value("client.page_finished_ns", 0);
  result.robot = robot.stats();
  result.server = server.stats();
  result.connections_used = client_host.total_connections_created();
  result.max_parallel_connections = client_host.max_simultaneous_connections();
  result.packet_trains = trace.packet_trains();
  result.mean_packet_train = trace.mean_packet_train_length();
  return result;
}

}  // namespace hsim::harness
