#include "harness/table.hpp"

#include <cstdarg>
#include <cstdio>

namespace hsim::harness {

namespace {
void append_line(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}
}  // namespace

std::string render_table(const std::string& title,
                         const std::vector<TableRow>& rows,
                         bool with_paper_reference) {
  std::string out;
  append_line(out, "=== %s ===", title.c_str());
  append_line(out, "%-38s | %31s | %31s", "", "First Time Retrieval",
              "Cache Validation");
  append_line(out, "%-38s | %7s %9s %6s %5s | %7s %9s %6s %5s", "Mode", "Pa",
              "Bytes", "Sec", "%ov", "Pa", "Bytes", "Sec", "%ov");
  append_line(out,
              "---------------------------------------+---------------------"
              "-----------+--------------------------------");
  for (const TableRow& row : rows) {
    append_line(out,
                "%-38s | %7.1f %9.0f %6.2f %5.1f | %7.1f %9.0f %6.2f %5.1f",
                row.label.c_str(), row.first_visit.packets,
                row.first_visit.bytes, row.first_visit.seconds,
                row.first_visit.overhead_percent, row.revalidation.packets,
                row.revalidation.bytes, row.revalidation.seconds,
                row.revalidation.overhead_percent);
    if (with_paper_reference &&
        (row.paper_first_packets > 0 || row.paper_reval_packets > 0)) {
      append_line(out, "%-38s | %7.1f %9s %6.2f %5s | %7.1f %9s %6.2f %5s",
                  "  (paper)", row.paper_first_packets, "-",
                  row.paper_first_seconds, "-", row.paper_reval_packets, "-",
                  row.paper_reval_seconds, "-");
    }
  }
  return out;
}

std::string render_summary_line(const std::string& label,
                                const AveragedResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-38s  Pa=%7.1f  Bytes=%9.0f  Sec=%6.2f  %%ov=%4.1f  "
                "(c->s %.1f, s->c %.1f, conns %.1f, train %.1f)",
                label.c_str(), r.packets, r.bytes, r.seconds,
                r.overhead_percent, r.packets_c2s, r.packets_s2c,
                r.connections, r.mean_packet_train);
  return buf;
}

}  // namespace hsim::harness
