// Pluggable per-egress queue disciplines for topo::Router.
//
// A net::Link models the physical transmitter (serialisation + propagation);
// a QueueDisc models the *buffering policy* in front of it. The router keeps
// every queued packet inside the discipline and clocks exactly one packet at
// a time into the link (via Link::set_on_idle back-pressure), so the link's
// internal drop-tail queue never fills and the discipline alone decides what
// is buffered and what is dropped.
//
// Two disciplines are provided:
//   - DropTail: the classic FIFO with a packet budget and/or a byte budget.
//     A packet arriving when either budget is exhausted is dropped.
//   - Red: Random Early Detection (Floyd & Jacobson 1993). An EWMA of the
//     queue depth drives a probabilistic early drop between min/max
//     thresholds, a forced drop above the max threshold, and a hard
//     tail-drop at the physical budget. All randomness draws from the
//     discipline's own sim::Rng stream, so a fixed seed reproduces the
//     exact same drop pattern (asserted by topo_queue_test).
//
// Every discipline publishes per-queue registry metrics under
// `topo.queue.<label>.*`: enqueued/dropped counters, depth gauges (peaks)
// and a queue-wait histogram in microseconds.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hsim::topo {

/// Why enqueue() refused a packet; kAccepted means it was queued.
enum class DropReason {
  kAccepted,
  kOverflow,  // packet/byte budget exhausted (tail drop)
  kEarly,     // RED probabilistic early drop
  kForced,    // RED average depth at/above the max threshold
};

struct QueueStats {
  std::uint64_t offered_packets = 0;  // every enqueue attempt
  std::uint64_t enqueued_packets = 0;
  std::uint64_t enqueued_bytes = 0;  // wire bytes (payload + header)
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dequeued_bytes = 0;
  std::uint64_t dropped_overflow = 0;
  std::uint64_t dropped_early = 0;
  std::uint64_t dropped_forced = 0;
  /// Packets discarded in-queue by flush_all() (router crash); these were
  /// *enqueued* first, so conservation reads
  /// enqueued == dequeued + dropped_flushed + depth.
  std::uint64_t dropped_flushed = 0;
  std::size_t peak_depth_packets = 0;
  std::size_t peak_depth_bytes = 0;

  /// Admission drops (packets refused at enqueue). Flushed packets are not
  /// included: they were accepted and later destroyed.
  std::uint64_t dropped() const {
    return dropped_overflow + dropped_early + dropped_forced;
  }
};

/// FIFO queue discipline base: owns the queue, the stats and the registry
/// metrics; subclasses only decide admission.
class QueueDisc {
 public:
  explicit QueueDisc(std::string label);
  virtual ~QueueDisc() = default;
  QueueDisc(const QueueDisc&) = delete;
  QueueDisc& operator=(const QueueDisc&) = delete;

  /// Offers a packet at time `now`; returns kAccepted or the drop reason.
  DropReason enqueue(net::Packet packet, sim::Time now);

  /// Pops the head packet (precondition: !empty()). `now` stamps the
  /// queue-wait histogram.
  net::Packet dequeue(sim::Time now);

  /// Destroys every queued packet (a crashing router loses its buffers),
  /// counting each into dropped_flushed. Returns the number flushed.
  std::size_t flush_all();

  bool empty() const { return fifo_.empty(); }
  std::size_t depth_packets() const { return fifo_.size(); }
  std::size_t depth_bytes() const { return depth_bytes_; }

  const QueueStats& stats() const { return stats_; }
  const std::string& label() const { return label_; }
  virtual std::string_view kind() const = 0;

 protected:
  /// Admission decision for a packet of `wire_bytes`, taken before it is
  /// queued (the current depth does not yet include it).
  virtual DropReason admit(std::size_t wire_bytes) = 0;

 private:
  struct Entry {
    net::Packet packet;
    sim::Time enqueued_at;
  };

  std::string label_;
  std::deque<Entry> fifo_;
  std::size_t depth_bytes_ = 0;
  QueueStats stats_;

  struct Metrics {
    obs::CounterHandle enqueued, dropped;
    obs::GaugeHandle depth_packets, depth_bytes;
    obs::HistogramHandle wait_us;
    static Metrics bind(const std::string& label);
  };
  Metrics metrics_;
};

struct DropTailConfig {
  /// Maximum queued packets; 0 = unlimited.
  std::size_t limit_packets = 128;
  /// Maximum queued wire bytes; 0 = unlimited. Both budgets are enforced:
  /// a packet is dropped if it would exceed either.
  std::size_t limit_bytes = 0;
};

class DropTail : public QueueDisc {
 public:
  DropTail(std::string label, DropTailConfig config);

  std::string_view kind() const override { return "droptail"; }
  const DropTailConfig& config() const { return config_; }

 protected:
  DropReason admit(std::size_t wire_bytes) override;

 private:
  DropTailConfig config_;
};

struct RedConfig {
  /// EWMA thresholds, in packets.
  double min_threshold = 5.0;
  double max_threshold = 15.0;
  /// Drop probability as the average reaches max_threshold (max_p).
  double max_drop_probability = 0.10;
  /// EWMA weight w_q: avg = (1-w)·avg + w·depth, sampled per arrival.
  double weight = 0.002;
  /// Hard physical budgets (tail drop beyond), as in DropTailConfig.
  std::size_t limit_packets = 128;
  std::size_t limit_bytes = 0;
};

class Red : public QueueDisc {
 public:
  Red(std::string label, RedConfig config, sim::Rng rng);

  std::string_view kind() const override { return "red"; }
  const RedConfig& config() const { return config_; }
  /// Current EWMA of the queue depth, in packets.
  double average_depth() const { return avg_; }

 protected:
  DropReason admit(std::size_t wire_bytes) override;

 private:
  RedConfig config_;
  sim::Rng rng_;
  double avg_ = 0.0;
  /// Packets accepted since the last early drop (-1: below min threshold),
  /// driving the inter-drop spreading term p_a = p_b / (1 - count·p_b).
  int count_ = -1;
};

/// Discipline selector for topology/workload configuration structs.
enum class QueueDiscKind { kDropTail, kRed };

struct QueueConfig {
  QueueDiscKind kind = QueueDiscKind::kDropTail;
  DropTailConfig drop_tail;
  RedConfig red;
};

/// Builds the configured discipline. `rng` seeds RED's drop stream (DropTail
/// consumes no randomness; the stream is discarded for it).
std::unique_ptr<QueueDisc> make_queue_disc(const QueueConfig& config,
                                           std::string label, sim::Rng rng);

}  // namespace hsim::topo
