// Named multi-hop topologies composed from hosts, routers and links.
//
// The builder wires caller-owned tcp::Hosts into router/link graphs and
// returns a Topology that owns the routers, links and queue disciplines.
// Three canonical shapes cover the many-client experiments:
//
//   star — contention-free reference: one hub router with a dedicated duplex
//   access channel per client and per server, every egress queue unlimited.
//   N clients never compete for bandwidth (each leg is private), which is
//   exactly the PR-3 behaviour the dumbbell exists to correct.
//
//       client0 ── access ──┐
//       client1 ── access ──┤ hub ── access ── server
//       clientN ── access ──┘
//
//   dumbbell — the contention shape: per-client access legs into a "gate"
//   router, one shared bottleneck link pair (each direction carrying the
//   configured queue discipline) to a "core" router, and a host-attachment
//   leg to the server. Every byte of every client crosses the same two
//   bottleneck queues, so N clients genuinely share the capacity.
//
//       client0 ── access ──┐                      ┌── attach ── server
//       client1 ── access ──┤ gate ══ bottleneck ══ core
//       clientN ── access ──┘   (qdisc each way)
//
//   shared_bottleneck — the minimal N-behind-one-link shape: client access
//   legs into one router whose single disciplined egress is the bottleneck
//   into the server; the return path is the server's own bottleneck link
//   fanning out at the router. (Only the client→server direction carries a
//   queue discipline — use the dumbbell when both directions matter.)
//
// All randomness (RED drop streams, link jitter) forks off the one rng the
// builder is given, so a topology is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/channel.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "tcp/host.hpp"
#include "topo/queue_disc.hpp"
#include "topo/router.hpp"

namespace hsim::topo {

/// Bottleneck link pair parameters (applied per direction).
struct BottleneckSpec {
  std::int64_t bandwidth_bps = 10'000'000;
  sim::Time delay = sim::milliseconds(10);
  QueueConfig queue;
  /// Optional edit of the bottleneck link configs just before the links are
  /// built (both directions; in dumbbell_redundant only the *primary* pair).
  /// This is how fault timelines arm outage windows / loss models on the
  /// shared link without touching the access legs. Null = unmodified.
  std::function<void(net::LinkConfig&)> mutate_link;
};

/// Redundant-bottleneck failover parameters (see dumbbell_redundant).
struct FailoverSpec {
  /// How long a router must observe the primary bottleneck link down before
  /// rerouting onto the backup, and healthy again before failing back.
  /// Detection is traffic-clocked (see Router::set_failover).
  sim::Time detection_delay = sim::milliseconds(50);
};

/// Owns the routers, links and queue disciplines a builder wired up; hosts
/// stay caller-owned. Links and routers are reachable by name:
///   links:   "client<i>.up" / "client<i>.down", "bn.up" / "bn.down",
///            "server.up" / "server.down"
///   routers: "hub" (star), "gate" / "core" (dumbbell, shared_bottleneck)
class Topology {
 public:
  Router* router(std::string_view name) const;
  net::Link* link(std::string_view name) const;

  const std::vector<std::unique_ptr<Router>>& routers() const {
    return routers_;
  }

  /// Every link with its name, for conservation oracles that must account
  /// for packets at each layer of each hop.
  const std::map<std::string, net::Link*, std::less<>>& links_by_name() const {
    return links_by_name_;
  }

  /// Every queue discipline in the topology (router egress order), for
  /// stats collection.
  std::vector<const QueueDisc*> queues() const;

  /// Total packets dropped by queue disciplines, all routers.
  std::uint64_t queue_drops() const;

  /// Attaches a multi-hop trace to every router.
  void set_hop_trace(net::PacketTrace* trace);

 private:
  friend class TopologyBuilder;

  net::Link* add_link(const std::string& name, sim::EventQueue& queue,
                      const net::LinkConfig& config, sim::Rng rng);
  Router* add_router(const std::string& name, sim::EventQueue& queue);

  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::map<std::string, net::Link*, std::less<>> links_by_name_;
  std::map<std::string, Router*, std::less<>> routers_by_name_;
  std::int32_t next_router_id_ = 1;  // 0 is reserved; -1 means "no hop"
};

class TopologyBuilder {
 public:
  TopologyBuilder(sim::EventQueue& queue, sim::Rng rng)
      : queue_(queue), rng_(rng) {}

  /// Sharded-engine placement of client i's uplink. The uplink's transmitter
  /// is driven by the client host, so under the sharded engine it must
  /// schedule against the client shard's queue and bind its metrics to that
  /// shard's registry; everything else the builder wires (routers, queue
  /// disciplines, bottleneck pair, downlinks, server legs) stays on the
  /// builder's own queue and the ambient registry. Unset (the default)
  /// places everything on the builder queue — the classic single-queue
  /// layout. Placement never changes the builder's rng fork order, so the
  /// same seed draws the same streams in either layout.
  struct UplinkPlacement {
    sim::EventQueue* queue = nullptr;     // null: builder queue
    obs::Registry* registry = nullptr;    // null: ambient registry
  };
  using UplinkPlacementFn = std::function<UplinkPlacement(std::size_t client)>;
  void set_uplink_placement(UplinkPlacementFn fn) {
    uplink_placement_ = std::move(fn);
  }

  /// Contention-free star (see file comment). Every egress queue is an
  /// unlimited DropTail: the hub never drops, all loss behaviour stays in
  /// the access links' own models.
  Topology star(const std::vector<tcp::Host*>& clients, tcp::Host* server,
                const net::ChannelConfig& access);

  /// Shared dumbbell bottleneck (see file comment). `access` shapes each
  /// client's private legs; `bottleneck` shapes the shared pair, including
  /// the per-direction queue discipline.
  Topology dumbbell(const std::vector<tcp::Host*>& clients, tcp::Host* server,
                    const net::ChannelConfig& access,
                    const BottleneckSpec& bottleneck);

  /// N clients directly behind one disciplined bottleneck into the server.
  Topology shared_bottleneck(const std::vector<tcp::Host*>& clients,
                             tcp::Host* server,
                             const net::ChannelConfig& access,
                             const BottleneckSpec& bottleneck);

  /// Dumbbell with a redundant bottleneck: the shape of dumbbell(), plus a
  /// second (backup) bottleneck pair between gate and core. Both directions
  /// route over the primary pair ("bnA.up"/"bnA.down") until the owning
  /// router observes it down for failover.detection_delay, then fail over to
  /// the backup pair ("bnB.up"/"bnB.down"), failing back symmetrically once
  /// the primary is healthy again. bottleneck.mutate_link applies to the
  /// primary pair only, so injected outages exercise the failover path while
  /// the backup stays clean.
  Topology dumbbell_redundant(const std::vector<tcp::Host*>& clients,
                              tcp::Host* server,
                              const net::ChannelConfig& access,
                              const BottleneckSpec& bottleneck,
                              const FailoverSpec& failover);

 private:
  /// Wires client i's duplex access legs: uplink into `ingress`, downlink
  /// out of egress `i`-th port of `fanout` (routes added by caller).
  void wire_client_legs(Topology& topo, const std::vector<tcp::Host*>& clients,
                        const net::ChannelConfig& access, Router* ingress,
                        Router* fanout);

  sim::EventQueue& queue_;
  sim::Rng rng_;
  UplinkPlacementFn uplink_placement_;
};

/// An unlimited DropTail for host-attachment and fan-out egresses whose
/// queueing should be invisible.
std::unique_ptr<QueueDisc> unlimited_queue(std::string label);

}  // namespace hsim::topo
