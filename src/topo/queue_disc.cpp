#include "topo/queue_disc.hpp"

#include <algorithm>
#include <utility>

namespace hsim::topo {

QueueDisc::Metrics QueueDisc::Metrics::bind(const std::string& label) {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  const std::string prefix = "topo.queue." + label + ".";
  m.enqueued = obs::counter_handle(prefix + "enqueued");
  m.dropped = obs::counter_handle(prefix + "dropped");
  m.depth_packets = obs::gauge_handle(prefix + "depth_packets");
  m.depth_bytes = obs::gauge_handle(prefix + "depth_bytes");
  m.wait_us = obs::histogram_handle(prefix + "wait_us");
  return m;
}

QueueDisc::QueueDisc(std::string label)
    : label_(std::move(label)), metrics_(Metrics::bind(label_)) {}

DropReason QueueDisc::enqueue(net::Packet packet, sim::Time now) {
  ++stats_.offered_packets;
  const std::size_t wire = packet.wire_size();
  const DropReason reason = admit(wire);
  if (reason != DropReason::kAccepted) {
    switch (reason) {
      case DropReason::kOverflow: ++stats_.dropped_overflow; break;
      case DropReason::kEarly: ++stats_.dropped_early; break;
      case DropReason::kForced: ++stats_.dropped_forced; break;
      case DropReason::kAccepted: break;
    }
    metrics_.dropped.inc();
    return reason;
  }
  fifo_.push_back({std::move(packet), now});
  depth_bytes_ += wire;
  ++stats_.enqueued_packets;
  stats_.enqueued_bytes += wire;
  stats_.peak_depth_packets =
      std::max(stats_.peak_depth_packets, fifo_.size());
  stats_.peak_depth_bytes = std::max(stats_.peak_depth_bytes, depth_bytes_);
  metrics_.enqueued.inc();
  metrics_.depth_packets.set(static_cast<std::int64_t>(fifo_.size()));
  metrics_.depth_bytes.set(static_cast<std::int64_t>(depth_bytes_));
  return DropReason::kAccepted;
}

net::Packet QueueDisc::dequeue(sim::Time now) {
  Entry entry = std::move(fifo_.front());
  fifo_.pop_front();
  const std::size_t wire = entry.packet.wire_size();
  depth_bytes_ -= wire;
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += wire;
  metrics_.depth_packets.set(static_cast<std::int64_t>(fifo_.size()));
  metrics_.depth_bytes.set(static_cast<std::int64_t>(depth_bytes_));
  metrics_.wait_us.observe(
      static_cast<std::uint64_t>((now - entry.enqueued_at) / 1000));
  return std::move(entry.packet);
}

std::size_t QueueDisc::flush_all() {
  const std::size_t flushed = fifo_.size();
  fifo_.clear();
  depth_bytes_ = 0;
  stats_.dropped_flushed += flushed;
  metrics_.dropped.inc(flushed);
  metrics_.depth_packets.set(0);
  metrics_.depth_bytes.set(0);
  return flushed;
}

// ---------------------------------------------------------------------------
// DropTail
// ---------------------------------------------------------------------------

DropTail::DropTail(std::string label, DropTailConfig config)
    : QueueDisc(std::move(label)), config_(config) {}

DropReason DropTail::admit(std::size_t wire_bytes) {
  if (config_.limit_packets != 0 && depth_packets() >= config_.limit_packets) {
    return DropReason::kOverflow;
  }
  if (config_.limit_bytes != 0 &&
      depth_bytes() + wire_bytes > config_.limit_bytes) {
    return DropReason::kOverflow;
  }
  return DropReason::kAccepted;
}

// ---------------------------------------------------------------------------
// RED
// ---------------------------------------------------------------------------

Red::Red(std::string label, RedConfig config, sim::Rng rng)
    : QueueDisc(std::move(label)), config_(config), rng_(rng) {}

DropReason Red::admit(std::size_t wire_bytes) {
  // Sample the EWMA on every arrival (the classic per-arrival update; no
  // idle-time correction, which keeps the chain a pure function of the
  // arrival sequence and the seed).
  avg_ = (1.0 - config_.weight) * avg_ +
         config_.weight * static_cast<double>(depth_packets());

  // Physical budget is always enforced, whatever the average says.
  if (config_.limit_packets != 0 && depth_packets() >= config_.limit_packets) {
    return DropReason::kOverflow;
  }
  if (config_.limit_bytes != 0 &&
      depth_bytes() + wire_bytes > config_.limit_bytes) {
    return DropReason::kOverflow;
  }

  if (avg_ < config_.min_threshold) {
    count_ = -1;
    return DropReason::kAccepted;
  }
  if (avg_ >= config_.max_threshold) {
    count_ = 0;
    return DropReason::kForced;
  }
  ++count_;
  const double span = config_.max_threshold - config_.min_threshold;
  const double p_b = config_.max_drop_probability *
                     (avg_ - config_.min_threshold) / std::max(span, 1e-9);
  // Spread drops evenly over the inter-drop interval (Floyd & Jacobson §4).
  const double denom = 1.0 - static_cast<double>(count_) * p_b;
  const double p_a = denom <= 0.0 ? 1.0 : std::min(1.0, p_b / denom);
  if (rng_.chance(p_a)) {
    count_ = 0;
    return DropReason::kEarly;
  }
  return DropReason::kAccepted;
}

std::unique_ptr<QueueDisc> make_queue_disc(const QueueConfig& config,
                                           std::string label, sim::Rng rng) {
  switch (config.kind) {
    case QueueDiscKind::kRed:
      return std::make_unique<Red>(std::move(label), config.red, rng);
    case QueueDiscKind::kDropTail:
      break;
  }
  return std::make_unique<DropTail>(std::move(label), config.drop_tail);
}

}  // namespace hsim::topo
