#include "topo/topology.hpp"

#include <utility>

namespace hsim::topo {

namespace {

net::LinkConfig attach_link_config() {
  // Host-attachment leg: infinite bandwidth, zero delay — purely a wiring
  // element so the router-side egress still has a Link to clock against.
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 0;
  cfg.propagation_delay = 0;
  cfg.queue_limit_packets = 4;  // router back-pressure keeps this at <= 1
  return cfg;
}

net::LinkConfig bottleneck_link_config(const BottleneckSpec& spec) {
  net::LinkConfig cfg;
  cfg.bandwidth_bps = spec.bandwidth_bps;
  cfg.propagation_delay = spec.delay;
  // All buffering lives in the router's queue discipline; the link itself
  // only ever holds the packet being serialised.
  cfg.queue_limit_packets = 4;
  return cfg;
}

}  // namespace

std::unique_ptr<QueueDisc> unlimited_queue(std::string label) {
  return std::make_unique<DropTail>(std::move(label),
                                    DropTailConfig{/*limit_packets=*/0,
                                                   /*limit_bytes=*/0});
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

Router* Topology::router(std::string_view name) const {
  const auto it = routers_by_name_.find(name);
  return it == routers_by_name_.end() ? nullptr : it->second;
}

net::Link* Topology::link(std::string_view name) const {
  const auto it = links_by_name_.find(name);
  return it == links_by_name_.end() ? nullptr : it->second;
}

std::vector<const QueueDisc*> Topology::queues() const {
  std::vector<const QueueDisc*> out;
  for (const auto& router : routers_) {
    for (std::size_t i = 0; i < router->egress_count(); ++i) {
      out.push_back(&router->egress_queue(i));
    }
  }
  return out;
}

std::uint64_t Topology::queue_drops() const {
  std::uint64_t drops = 0;
  for (const QueueDisc* q : queues()) drops += q->stats().dropped();
  return drops;
}

void Topology::set_hop_trace(net::PacketTrace* trace) {
  for (const auto& router : routers_) router->set_hop_trace(trace);
}

net::Link* Topology::add_link(const std::string& name, sim::EventQueue& queue,
                              const net::LinkConfig& config, sim::Rng rng) {
  // Every topology link is registry-visible under its topology name, so the
  // drop partition is attributable per link at every layer.
  net::LinkConfig labeled = config;
  labeled.label = name;
  links_.push_back(std::make_unique<net::Link>(queue, labeled, rng));
  net::Link* link = links_.back().get();
  links_by_name_[name] = link;
  return link;
}

Router* Topology::add_router(const std::string& name, sim::EventQueue& queue) {
  routers_.push_back(
      std::make_unique<Router>(queue, next_router_id_++, name));
  Router* router = routers_.back().get();
  routers_by_name_[name] = router;
  return router;
}

// ---------------------------------------------------------------------------
// TopologyBuilder
// ---------------------------------------------------------------------------

void TopologyBuilder::wire_client_legs(Topology& topo,
                                       const std::vector<tcp::Host*>& clients,
                                       const net::ChannelConfig& access,
                                       Router* ingress, Router* fanout) {
  for (std::size_t i = 0; i < clients.size(); ++i) {
    tcp::Host* client = clients[i];
    const std::string base = "client" + std::to_string(i);
    UplinkPlacement placement;
    if (uplink_placement_) placement = uplink_placement_(i);
    sim::EventQueue& up_queue =
        placement.queue != nullptr ? *placement.queue : queue_;
    net::Link* up;
    {
      // The uplink's metric handles must bind the shard registry its
      // transmitter will run under; the fork order is untouched either way.
      obs::ScopedRegistry scoped(placement.registry != nullptr
                                     ? placement.registry
                                     : obs::registry());
      up = topo.add_link(base + ".up", up_queue, access.a_to_b, rng_.fork());
    }
    net::Link* down = topo.add_link(base + ".down", queue_, access.b_to_a,
                                    rng_.fork());
    up->set_sink(ingress);
    down->set_sink(client);
    client->attach_uplink(up);
    const std::size_t egress =
        fanout->add_egress(down, unlimited_queue(fanout->name() + "." + base));
    fanout->add_route(client->addr(), egress);
  }
}

Topology TopologyBuilder::star(const std::vector<tcp::Host*>& clients,
                               tcp::Host* server,
                               const net::ChannelConfig& access) {
  Topology topo;
  Router* hub = topo.add_router("hub", queue_);

  // Server legs use the same access channel shape as the clients: the hub is
  // a pure crossbar, not a bottleneck.
  net::Link* server_up = topo.add_link("server.up", queue_, access.a_to_b,
                                       rng_.fork());
  net::Link* server_down = topo.add_link("server.down", queue_, access.b_to_a,
                                         rng_.fork());
  server_up->set_sink(hub);
  server_down->set_sink(server);
  server->attach_uplink(server_up);
  const std::size_t to_server =
      hub->add_egress(server_down, unlimited_queue("hub.server"));
  hub->add_route(server->addr(), to_server);

  wire_client_legs(topo, clients, access, hub, hub);
  return topo;
}

Topology TopologyBuilder::dumbbell(const std::vector<tcp::Host*>& clients,
                                   tcp::Host* server,
                                   const net::ChannelConfig& access,
                                   const BottleneckSpec& bottleneck) {
  Topology topo;
  Router* gate = topo.add_router("gate", queue_);
  Router* core = topo.add_router("core", queue_);

  net::LinkConfig bn_cfg = bottleneck_link_config(bottleneck);
  if (bottleneck.mutate_link) bottleneck.mutate_link(bn_cfg);
  net::Link* bn_up = topo.add_link("bn.up", queue_, bn_cfg, rng_.fork());
  net::Link* bn_down = topo.add_link("bn.down", queue_, bn_cfg, rng_.fork());
  bn_up->set_sink(core);
  bn_down->set_sink(gate);

  // The shared queues: everything client->server crosses gate's bottleneck
  // egress, everything server->client crosses core's.
  const std::size_t gate_to_core = gate->add_egress(
      bn_up, make_queue_disc(bottleneck.queue, "bn.up", rng_.fork()));
  const std::size_t core_to_gate = core->add_egress(
      bn_down, make_queue_disc(bottleneck.queue, "bn.down", rng_.fork()));
  gate->add_route(server->addr(), gate_to_core);
  core->set_default_route(core_to_gate);

  // Server attachment: an infinite-capacity leg so the core has a Link to
  // clock against; the bottleneck serialisation happened one hop earlier.
  net::Link* server_up =
      topo.add_link("server.up", queue_, attach_link_config(), rng_.fork());
  net::Link* server_down =
      topo.add_link("server.down", queue_, attach_link_config(), rng_.fork());
  server_up->set_sink(core);
  server_down->set_sink(server);
  server->attach_uplink(server_up);
  const std::size_t to_server =
      core->add_egress(server_down, unlimited_queue("core.server"));
  core->add_route(server->addr(), to_server);

  wire_client_legs(topo, clients, access, gate, gate);
  return topo;
}

Topology TopologyBuilder::dumbbell_redundant(
    const std::vector<tcp::Host*>& clients, tcp::Host* server,
    const net::ChannelConfig& access, const BottleneckSpec& bottleneck,
    const FailoverSpec& failover) {
  Topology topo;
  Router* gate = topo.add_router("gate", queue_);
  Router* core = topo.add_router("core", queue_);

  // Primary pair carries the injected faults; the backup pair stays clean so
  // the failover has somewhere sane to land.
  net::LinkConfig primary_cfg = bottleneck_link_config(bottleneck);
  if (bottleneck.mutate_link) bottleneck.mutate_link(primary_cfg);
  const net::LinkConfig backup_cfg = bottleneck_link_config(bottleneck);

  net::Link* bna_up = topo.add_link("bnA.up", queue_, primary_cfg, rng_.fork());
  net::Link* bna_down =
      topo.add_link("bnA.down", queue_, primary_cfg, rng_.fork());
  net::Link* bnb_up = topo.add_link("bnB.up", queue_, backup_cfg, rng_.fork());
  net::Link* bnb_down =
      topo.add_link("bnB.down", queue_, backup_cfg, rng_.fork());
  bna_up->set_sink(core);
  bnb_up->set_sink(core);
  bna_down->set_sink(gate);
  bnb_down->set_sink(gate);

  const std::size_t gate_primary = gate->add_egress(
      bna_up, make_queue_disc(bottleneck.queue, "bnA.up", rng_.fork()));
  const std::size_t gate_backup = gate->add_egress(
      bnb_up, make_queue_disc(bottleneck.queue, "bnB.up", rng_.fork()));
  gate->add_route(server->addr(), gate_primary);
  gate->set_failover(gate_primary, gate_backup, failover.detection_delay);

  const std::size_t core_primary = core->add_egress(
      bna_down, make_queue_disc(bottleneck.queue, "bnA.down", rng_.fork()));
  const std::size_t core_backup = core->add_egress(
      bnb_down, make_queue_disc(bottleneck.queue, "bnB.down", rng_.fork()));
  core->set_default_route(core_primary);
  core->set_failover(core_primary, core_backup, failover.detection_delay);

  net::Link* server_up =
      topo.add_link("server.up", queue_, attach_link_config(), rng_.fork());
  net::Link* server_down =
      topo.add_link("server.down", queue_, attach_link_config(), rng_.fork());
  server_up->set_sink(core);
  server_down->set_sink(server);
  server->attach_uplink(server_up);
  const std::size_t to_server =
      core->add_egress(server_down, unlimited_queue("core.server"));
  core->add_route(server->addr(), to_server);

  wire_client_legs(topo, clients, access, gate, gate);
  return topo;
}

Topology TopologyBuilder::shared_bottleneck(
    const std::vector<tcp::Host*>& clients, tcp::Host* server,
    const net::ChannelConfig& access, const BottleneckSpec& bottleneck) {
  Topology topo;
  Router* gate = topo.add_router("gate", queue_);

  const net::LinkConfig bn_cfg = bottleneck_link_config(bottleneck);
  net::Link* bn_up = topo.add_link("bn.up", queue_, bn_cfg, rng_.fork());
  // The return direction is the server's own transmitter: it keeps the
  // bottleneck's bandwidth/delay but its queueing is the link's plain
  // drop-tail (no discipline — use dumbbell() when that matters).
  net::LinkConfig down_cfg = bn_cfg;
  down_cfg.queue_limit_packets =
      bottleneck.queue.drop_tail.limit_packets != 0
          ? bottleneck.queue.drop_tail.limit_packets
          : 128;
  net::Link* bn_down = topo.add_link("bn.down", queue_, down_cfg, rng_.fork());
  bn_up->set_sink(server);
  bn_down->set_sink(gate);
  server->attach_uplink(bn_down);

  const std::size_t to_server = gate->add_egress(
      bn_up, make_queue_disc(bottleneck.queue, "bn.up", rng_.fork()));
  gate->add_route(server->addr(), to_server);

  wire_client_legs(topo, clients, access, gate, gate);
  return topo;
}

}  // namespace hsim::topo
