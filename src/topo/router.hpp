// A store-and-forward router node.
//
// A Router is a net::PacketSink that forwards arriving packets onto one of
// its egress ports via a static forwarding table (exact destination match,
// with an optional default route). Each egress pairs a net::Link — the
// physical transmitter — with a pluggable QueueDisc that owns all buffering
// policy: the router enqueues into the discipline and clocks exactly one
// packet at a time into the link, using Link::set_on_idle as back-pressure,
// so the link's internal queue never holds more than the packet being
// serialised and every queue/drop decision is the discipline's.
//
// Routers are the simulator's multi-hop observation points: an attached
// PacketTrace records each forwarded packet with this router's id and the
// egress queue depth it found at enqueue (the v2 trace formats' hop column).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/trace.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "topo/queue_disc.hpp"

namespace hsim::topo {

struct RouterStats {
  std::uint64_t forwarded = 0;         // accepted onto an egress queue
  std::uint64_t dropped_queue = 0;     // refused by a queue discipline
  std::uint64_t dropped_no_route = 0;  // no table entry and no default route
  std::uint64_t dropped_crashed = 0;   // arrived while the router was down
  std::uint64_t crash_flushed = 0;     // queued packets lost to a crash
  std::uint64_t failovers = 0;         // primary → backup route switches
  std::uint64_t failbacks = 0;         // backup → primary route switches
};

class Router : public net::PacketSink {
 public:
  static constexpr std::size_t kNoRoute = std::numeric_limits<std::size_t>::max();

  Router(sim::EventQueue& queue, std::int32_t id, std::string name);

  /// Registers an egress port; the router does not own the link. Returns the
  /// egress index used by add_route.
  std::size_t add_egress(net::Link* link, std::unique_ptr<QueueDisc> disc);

  /// Exact-match route: packets for `dst` leave through egress `egress`.
  void add_route(net::IpAddr dst, std::size_t egress);
  /// Fallback egress for destinations with no exact match.
  void set_default_route(std::size_t egress) { default_route_ = egress; }

  /// Multi-hop capture: every forwarded packet is recorded with this
  /// router's id and the queue depth found at enqueue.
  void set_hop_trace(net::PacketTrace* trace) { hop_trace_ = trace; }

  // ---- Fault injection ----------------------------------------------------

  /// Crashes the router: forwarding halts (arrivals are dropped with
  /// attribution in dropped_crashed) and every packet buffered in an egress
  /// discipline is destroyed (counted in crash_flushed and the discipline's
  /// dropped_flushed). Idempotent while already crashed.
  void crash();
  /// Brings a crashed router back: forwarding resumes with empty buffers.
  void restart();
  bool crashed() const { return crashed_; }
  /// Schedules a crash() at `down_at` and the matching restart() at `up_at`
  /// on the router's event queue.
  void schedule_crash(sim::Time down_at, sim::Time up_at);

  /// Wedges an egress: its discipline keeps accepting packets but the router
  /// stops clocking them into the link, so the queue fills and overflows.
  /// Unwedging resumes pumping immediately.
  void set_egress_wedged(std::size_t egress, bool wedged);
  bool egress_wedged(std::size_t egress) const {
    return egresses_[egress].wedged;
  }

  /// Deterministic forwarding-table failover: while the primary egress link
  /// has been observed down for at least `detection_delay`, packets routed
  /// to `primary` leave through `backup` instead; once the primary has been
  /// observed healthy again for `detection_delay`, traffic fails back.
  /// Detection is traffic-clocked (the state machine advances as packets
  /// arrive), so with no traffic there is no detection — as with real
  /// hello-based protocols, and exactly reproducible from the packet
  /// sequence. Packets arriving inside the detection window still go to the
  /// down primary (and are lost there) — that loss is the detection cost.
  void set_failover(std::size_t primary, std::size_t backup,
                    sim::Time detection_delay);

  // PacketSink: a packet arrived from one of the ingress links.
  void deliver(net::Packet packet) override;

  std::int32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  std::size_t egress_count() const { return egresses_.size(); }
  const QueueDisc& egress_queue(std::size_t i) const { return *egresses_[i].disc; }
  net::Link* egress_link(std::size_t i) const { return egresses_[i].link; }
  const RouterStats& stats() const { return stats_; }

 private:
  struct Egress {
    net::Link* link = nullptr;
    std::unique_ptr<QueueDisc> disc;
    bool wedged = false;
  };

  /// Primary→backup reroute state; see set_failover.
  struct Failover {
    std::size_t primary = kNoRoute;
    std::size_t backup = kNoRoute;
    sim::Time detection_delay = 0;
    bool using_backup = false;
    bool down_observed = false;  // down_since/up_since valid flags
    bool up_observed = false;
    sim::Time down_since = 0;
    sim::Time up_since = 0;
  };

  std::size_t route_for(net::IpAddr dst) const;
  /// Applies the failover state machine to a routed egress, advancing
  /// detection clocks as a side effect.
  std::size_t resolve_failover(std::size_t egress);
  /// Feeds the egress link while it is idle and the discipline has packets.
  void pump(std::size_t egress);

  sim::EventQueue& queue_;
  std::int32_t id_;
  std::string name_;
  std::vector<Egress> egresses_;
  std::map<net::IpAddr, std::size_t> routes_;
  std::size_t default_route_ = kNoRoute;
  net::PacketTrace* hop_trace_ = nullptr;
  bool crashed_ = false;
  std::vector<Failover> failovers_;
  RouterStats stats_;

  /// Aggregate topo.router.* metrics, summed over every router.
  struct Metrics {
    obs::CounterHandle forwarded, dropped_queue, dropped_no_route,
        dropped_crashed, crash_flushed, failovers, failbacks;
    static Metrics bind();
  };
  Metrics metrics_ = Metrics::bind();
};

}  // namespace hsim::topo
