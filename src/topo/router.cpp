#include "topo/router.hpp"

#include <utility>

namespace hsim::topo {

Router::Metrics Router::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  m.forwarded = obs::counter_handle("topo.router.forwarded");
  m.dropped_queue = obs::counter_handle("topo.router.dropped_queue");
  m.dropped_no_route = obs::counter_handle("topo.router.dropped_no_route");
  m.dropped_crashed = obs::counter_handle("topo.router.dropped_crashed");
  m.crash_flushed = obs::counter_handle("topo.router.crash_flushed");
  m.failovers = obs::counter_handle("topo.router.failovers");
  m.failbacks = obs::counter_handle("topo.router.failbacks");
  return m;
}

Router::Router(sim::EventQueue& queue, std::int32_t id, std::string name)
    : queue_(queue), id_(id), name_(std::move(name)) {}

std::size_t Router::add_egress(net::Link* link,
                               std::unique_ptr<QueueDisc> disc) {
  const std::size_t index = egresses_.size();
  egresses_.push_back({link, std::move(disc)});
  // Back-pressure: when the transmitter drains, clock out the next packet.
  link->set_on_idle([this, index] { pump(index); });
  return index;
}

void Router::add_route(net::IpAddr dst, std::size_t egress) {
  routes_[dst] = egress;
}

std::size_t Router::route_for(net::IpAddr dst) const {
  if (const auto it = routes_.find(dst); it != routes_.end()) {
    return it->second;
  }
  return default_route_;
}

void Router::crash() {
  if (crashed_) return;
  crashed_ = true;
  for (std::size_t i = 0; i < egresses_.size(); ++i) {
    const std::size_t flushed = egresses_[i].disc->flush_all();
    stats_.crash_flushed += flushed;
    metrics_.crash_flushed.inc(flushed);
  }
}

void Router::restart() {
  if (!crashed_) return;
  crashed_ = false;
  for (std::size_t i = 0; i < egresses_.size(); ++i) pump(i);
}

void Router::schedule_crash(sim::Time down_at, sim::Time up_at) {
  queue_.schedule_at(down_at, [this] { crash(); });
  queue_.schedule_at(up_at, [this] { restart(); });
}

void Router::set_egress_wedged(std::size_t egress, bool wedged) {
  Egress& e = egresses_[egress];
  if (e.wedged == wedged) return;
  e.wedged = wedged;
  if (!wedged) pump(egress);
}

void Router::set_failover(std::size_t primary, std::size_t backup,
                          sim::Time detection_delay) {
  Failover f;
  f.primary = primary;
  f.backup = backup;
  f.detection_delay = detection_delay;
  failovers_.push_back(f);
}

std::size_t Router::resolve_failover(std::size_t egress) {
  for (Failover& f : failovers_) {
    if (f.primary != egress) continue;
    const sim::Time now = queue_.now();
    const bool primary_down = egresses_[f.primary].link->is_down(now);
    if (!f.using_backup) {
      if (primary_down) {
        if (!f.down_observed) {
          f.down_observed = true;
          f.down_since = now;
        }
        if (now - f.down_since >= f.detection_delay) {
          f.using_backup = true;
          f.up_observed = false;
          ++stats_.failovers;
          metrics_.failovers.inc();
          return f.backup;
        }
      } else {
        f.down_observed = false;
      }
      return f.primary;
    }
    // Using the backup: watch the primary for sustained recovery.
    if (!primary_down) {
      if (!f.up_observed) {
        f.up_observed = true;
        f.up_since = now;
      }
      if (now - f.up_since >= f.detection_delay) {
        f.using_backup = false;
        f.down_observed = false;
        ++stats_.failbacks;
        metrics_.failbacks.inc();
        return f.primary;
      }
    } else {
      f.up_observed = false;
    }
    return f.backup;
  }
  return egress;
}

void Router::deliver(net::Packet packet) {
  if (crashed_) {
    ++stats_.dropped_crashed;
    metrics_.dropped_crashed.inc();
    return;
  }
  std::size_t index = route_for(packet.dst);
  if (index == kNoRoute) {
    ++stats_.dropped_no_route;
    metrics_.dropped_no_route.inc();
    return;
  }
  index = resolve_failover(index);
  Egress& egress = egresses_[index];
  const std::uint32_t depth_at_enqueue =
      static_cast<std::uint32_t>(egress.disc->depth_packets());
  net::Packet snapshot;
  if (hop_trace_ != nullptr) snapshot = packet;  // cheap: payload is refcounted
  const DropReason reason =
      egress.disc->enqueue(std::move(packet), queue_.now());
  if (reason != DropReason::kAccepted) {
    ++stats_.dropped_queue;
    metrics_.dropped_queue.inc();
    return;
  }
  ++stats_.forwarded;
  metrics_.forwarded.inc();
  if (hop_trace_ != nullptr) {
    hop_trace_->record_hop(queue_.now(), snapshot, id_, depth_at_enqueue);
  }
  pump(index);
}

void Router::pump(std::size_t index) {
  Egress& egress = egresses_[index];
  if (egress.wedged || crashed_) return;
  // transmit() may decline to start a transmission (fault-injection loss),
  // leaving the link idle — keep feeding until it is actually busy or the
  // discipline runs dry.
  while (!egress.disc->empty() && !egress.link->transmitting()) {
    egress.link->transmit(egress.disc->dequeue(queue_.now()));
  }
}

}  // namespace hsim::topo
