#include "topo/router.hpp"

#include <utility>

namespace hsim::topo {

Router::Metrics Router::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  m.forwarded = obs::counter_handle("topo.router.forwarded");
  m.dropped_queue = obs::counter_handle("topo.router.dropped_queue");
  m.dropped_no_route = obs::counter_handle("topo.router.dropped_no_route");
  return m;
}

Router::Router(sim::EventQueue& queue, std::int32_t id, std::string name)
    : queue_(queue), id_(id), name_(std::move(name)) {}

std::size_t Router::add_egress(net::Link* link,
                               std::unique_ptr<QueueDisc> disc) {
  const std::size_t index = egresses_.size();
  egresses_.push_back({link, std::move(disc)});
  // Back-pressure: when the transmitter drains, clock out the next packet.
  link->set_on_idle([this, index] { pump(index); });
  return index;
}

void Router::add_route(net::IpAddr dst, std::size_t egress) {
  routes_[dst] = egress;
}

std::size_t Router::route_for(net::IpAddr dst) const {
  if (const auto it = routes_.find(dst); it != routes_.end()) {
    return it->second;
  }
  return default_route_;
}

void Router::deliver(net::Packet packet) {
  const std::size_t index = route_for(packet.dst);
  if (index == kNoRoute) {
    ++stats_.dropped_no_route;
    metrics_.dropped_no_route.inc();
    return;
  }
  Egress& egress = egresses_[index];
  const std::uint32_t depth_at_enqueue =
      static_cast<std::uint32_t>(egress.disc->depth_packets());
  net::Packet snapshot;
  if (hop_trace_ != nullptr) snapshot = packet;  // cheap: payload is refcounted
  const DropReason reason =
      egress.disc->enqueue(std::move(packet), queue_.now());
  if (reason != DropReason::kAccepted) {
    ++stats_.dropped_queue;
    metrics_.dropped_queue.inc();
    return;
  }
  ++stats_.forwarded;
  metrics_.forwarded.inc();
  if (hop_trace_ != nullptr) {
    hop_trace_->record_hop(queue_.now(), snapshot, id_, depth_at_enqueue);
  }
  pump(index);
}

void Router::pump(std::size_t index) {
  Egress& egress = egresses_[index];
  // transmit() may decline to start a transmission (fault-injection loss),
  // leaving the link idle — keep feeding until it is actually busy or the
  // discipline runs dry.
  while (!egress.disc->empty() && !egress.link->transmitting()) {
    egress.link->transmit(egress.disc->dequeue(queue_.now()));
  }
}

}  // namespace hsim::topo
