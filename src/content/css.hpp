// CSS1 text-image replacement analysis (the paper's "Replacing Images with
// HTML and CSS" section).
//
// For each image on the page we decide whether an HTML+CSS equivalent exists
// (text banners, bullets, spacers — yes; photographs and detailed logos —
// no), synthesize the actual replacement markup, and compare byte counts and
// request counts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "content/image.hpp"

namespace hsim::content {

struct ImageReplacement {
  std::string path;
  ImageKind kind;
  std::size_t gif_bytes = 0;
  bool replaceable = false;
  /// The HTML+CSS markup that replaces the <img> reference (style rule
  /// amortized across users of the same class + the inline element).
  std::string replacement_markup;
  std::size_t replacement_bytes() const { return replacement_markup.size(); }
};

struct CssAnalysis {
  std::vector<ImageReplacement> images;
  std::size_t total_images = 0;
  std::size_t replaceable_images = 0;
  std::size_t gif_bytes_total = 0;        // all static images
  std::size_t gif_bytes_replaceable = 0;  // bytes eliminated by CSS
  std::size_t css_bytes = 0;              // markup added to the HTML
  std::size_t requests_saved = 0;

  double byte_reduction_factor() const {
    return css_bytes == 0 ? 0.0
                          : static_cast<double>(gif_bytes_replaceable) /
                                static_cast<double>(css_bytes);
  }
};

/// Decides replaceability by image kind and produces the markup.
ImageReplacement make_replacement(const std::string& path, ImageKind kind,
                                  std::size_t gif_bytes, unsigned width,
                                  unsigned height);

/// The paper's Figure 1: the 682-byte "solutions" banner and its ~150-byte
/// HTML+CSS equivalent.
std::string solutions_banner_css();

/// Aggregates replacements for a whole page.
CssAnalysis analyze_replacements(const std::vector<ImageReplacement>& images);

}  // namespace hsim::content
