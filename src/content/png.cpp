#include "content/png.hpp"

#include <algorithm>
#include <cstring>

#include "deflate/checksum.hpp"
#include "deflate/deflate.hpp"
#include "deflate/inflate.hpp"

namespace hsim::content {

namespace {

constexpr std::uint8_t kSignature[8] = {0x89, 'P',  'N',  'G',
                                        0x0D, 0x0A, 0x1A, 0x0A};

void append_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_chunk(std::vector<std::uint8_t>& out, const char type[4],
                  std::span<const std::uint8_t> data) {
  append_u32be(out, static_cast<std::uint32_t>(data.size()));
  std::vector<std::uint8_t> body(type, type + 4);
  body.insert(body.end(), data.begin(), data.end());
  out.insert(out.end(), body.begin(), body.end());
  append_u32be(out, deflate::crc32(body));
}

/// PNG bit depth for a palette size: 1, 2, 4 or 8.
unsigned depth_for_palette(std::size_t entries) {
  if (entries <= 2) return 1;
  if (entries <= 4) return 2;
  if (entries <= 16) return 4;
  return 8;
}

std::size_t row_bytes(unsigned width, unsigned depth) {
  return (static_cast<std::size_t>(width) * depth + 7) / 8;
}

/// Packs one row of palette indices at the given depth.
void pack_row(const IndexedImage& img, unsigned y, unsigned depth,
              std::vector<std::uint8_t>& row) {
  std::fill(row.begin(), row.end(), 0);
  for (unsigned x = 0; x < img.width; ++x) {
    const std::uint8_t v = img.at(x, y);
    if (depth == 8) {
      row[x] = v;
    } else {
      const unsigned bit = x * depth;
      row[bit / 8] |= static_cast<std::uint8_t>(
          v << (8 - depth - (bit % 8)));
    }
  }
}

std::uint8_t paeth(std::uint8_t a, std::uint8_t b, std::uint8_t c) {
  const int p = static_cast<int>(a) + b - c;
  const int pa = std::abs(p - a), pb = std::abs(p - b), pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) return a;
  if (pb <= pc) return b;
  return c;
}

/// Applies PNG filter `f` to `cur` given previous row `prev` (bpp = 1 byte
/// for indexed images).
void apply_filter(unsigned f, std::span<const std::uint8_t> cur,
                  std::span<const std::uint8_t> prev,
                  std::vector<std::uint8_t>& out) {
  out.resize(cur.size());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const std::uint8_t a = i > 0 ? cur[i - 1] : 0;
    const std::uint8_t b = prev.empty() ? 0 : prev[i];
    const std::uint8_t c = (i > 0 && !prev.empty()) ? prev[i - 1] : 0;
    switch (f) {
      case 0: out[i] = cur[i]; break;
      case 1: out[i] = static_cast<std::uint8_t>(cur[i] - a); break;
      case 2: out[i] = static_cast<std::uint8_t>(cur[i] - b); break;
      case 3:
        out[i] = static_cast<std::uint8_t>(cur[i] - ((a + b) / 2));
        break;
      default:
        out[i] = static_cast<std::uint8_t>(cur[i] - paeth(a, b, c));
        break;
    }
  }
}

void unapply_filter(unsigned f, std::vector<std::uint8_t>& cur,
                    std::span<const std::uint8_t> prev) {
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const std::uint8_t a = i > 0 ? cur[i - 1] : 0;
    const std::uint8_t b = prev.empty() ? 0 : prev[i];
    const std::uint8_t c = (i > 0 && !prev.empty()) ? prev[i - 1] : 0;
    switch (f) {
      case 0: break;
      case 1: cur[i] = static_cast<std::uint8_t>(cur[i] + a); break;
      case 2: cur[i] = static_cast<std::uint8_t>(cur[i] + b); break;
      case 3: cur[i] = static_cast<std::uint8_t>(cur[i] + ((a + b) / 2)); break;
      default: cur[i] = static_cast<std::uint8_t>(cur[i] + paeth(a, b, c)); break;
    }
  }
}

std::uint64_t abs_sum(std::span<const std::uint8_t> v) {
  // Treat filtered bytes as signed for the minimum-sum-of-absolute-values
  // heuristic (standard libpng strategy).
  std::uint64_t s = 0;
  for (std::uint8_t b : v) {
    s += b < 128 ? b : 256 - b;
  }
  return s;
}

}  // namespace

std::vector<std::uint8_t> encode_png(const IndexedImage& image,
                                     PngOptions options) {
  const unsigned depth = depth_for_palette(image.palette.size());
  const std::size_t rb = row_bytes(image.width, depth);

  // Build the filtered scanline stream.
  std::vector<std::uint8_t> raw;
  raw.reserve((rb + 1) * image.height);
  std::vector<std::uint8_t> prev_row;
  std::vector<std::uint8_t> cur_row(rb);
  std::vector<std::uint8_t> filtered, best;
  for (unsigned y = 0; y < image.height; ++y) {
    pack_row(image, y, depth, cur_row);
    unsigned best_filter = 0;
    apply_filter(0, cur_row, prev_row, best);
    if (options.adaptive_filtering) {
      std::uint64_t best_score = abs_sum(best);
      for (unsigned f = 1; f <= 4; ++f) {
        apply_filter(f, cur_row, prev_row, filtered);
        const std::uint64_t score = abs_sum(filtered);
        if (score < best_score) {
          best_score = score;
          best_filter = f;
          best = filtered;
        }
      }
    }
    raw.push_back(static_cast<std::uint8_t>(best_filter));
    raw.insert(raw.end(), best.begin(), best.end());
    prev_row = cur_row;
  }

  std::vector<std::uint8_t> out(kSignature, kSignature + 8);

  // IHDR
  std::vector<std::uint8_t> ihdr;
  append_u32be(ihdr, image.width);
  append_u32be(ihdr, image.height);
  ihdr.push_back(static_cast<std::uint8_t>(depth));
  ihdr.push_back(3);  // color type: indexed
  ihdr.push_back(0);  // compression: deflate
  ihdr.push_back(0);  // filter method 0
  ihdr.push_back(0);  // no interlace
  append_chunk(out, "IHDR", ihdr);

  if (options.include_gamma) {
    std::vector<std::uint8_t> gama;
    append_u32be(gama, 45455);  // 1/2.2 in 1e-5 units
    append_chunk(out, "gAMA", gama);
  }

  // PLTE
  std::vector<std::uint8_t> plte;
  for (std::uint32_t c : image.palette) {
    plte.push_back(static_cast<std::uint8_t>((c >> 16) & 0xFF));
    plte.push_back(static_cast<std::uint8_t>((c >> 8) & 0xFF));
    plte.push_back(static_cast<std::uint8_t>(c & 0xFF));
  }
  append_chunk(out, "PLTE", plte);

  // IDAT
  const auto idat = deflate::zlib_compress(
      raw, deflate::DeflateOptions{options.compression_level});
  append_chunk(out, "IDAT", idat);

  append_chunk(out, "IEND", {});
  return out;
}

PngDecodeResult decode_png(std::span<const std::uint8_t> data) {
  PngDecodeResult result;
  if (data.size() < 8 || std::memcmp(data.data(), kSignature, 8) != 0) {
    result.error = "bad signature";
    return result;
  }
  std::size_t pos = 8;
  unsigned width = 0, height = 0, depth = 0, color_type = 0;
  std::vector<std::uint32_t> palette;
  std::vector<std::uint8_t> idat;
  bool saw_end = false;

  auto read_u32be = [&](std::size_t at) {
    return (static_cast<std::uint32_t>(data[at]) << 24) |
           (static_cast<std::uint32_t>(data[at + 1]) << 16) |
           (static_cast<std::uint32_t>(data[at + 2]) << 8) |
           static_cast<std::uint32_t>(data[at + 3]);
  };

  while (pos + 12 <= data.size() && !saw_end) {
    const std::uint32_t len = read_u32be(pos);
    if (pos + 12 + len > data.size()) {
      result.error = "truncated chunk";
      return result;
    }
    const char* type = reinterpret_cast<const char*>(&data[pos + 4]);
    std::span<const std::uint8_t> body(&data[pos + 8], len);
    const std::uint32_t expect_crc = read_u32be(pos + 8 + len);
    const std::uint32_t got_crc =
        deflate::crc32(std::span(&data[pos + 4], len + 4));
    if (expect_crc != got_crc) {
      result.error = "chunk crc mismatch";
      return result;
    }
    if (std::memcmp(type, "IHDR", 4) == 0) {
      if (len != 13) {
        result.error = "bad IHDR";
        return result;
      }
      width = read_u32be(pos + 8);
      height = read_u32be(pos + 12);
      depth = body[8];
      color_type = body[9];
      if (color_type != 3 ||
          (depth != 1 && depth != 2 && depth != 4 && depth != 8)) {
        result.error = "unsupported format (only indexed)";
        return result;
      }
    } else if (std::memcmp(type, "PLTE", 4) == 0) {
      for (std::size_t i = 0; i + 2 < len; i += 3) {
        palette.push_back((static_cast<std::uint32_t>(body[i]) << 16) |
                          (static_cast<std::uint32_t>(body[i + 1]) << 8) |
                          body[i + 2]);
      }
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      idat.insert(idat.end(), body.begin(), body.end());
    } else if (std::memcmp(type, "gAMA", 4) == 0) {
      result.had_gamma = true;
    } else if (std::memcmp(type, "IEND", 4) == 0) {
      saw_end = true;
    }
    pos += 12 + len;
  }
  if (!saw_end || width == 0 || height == 0 || palette.empty()) {
    result.error = "incomplete png";
    return result;
  }

  const auto inflated = deflate::zlib_decompress(idat);
  if (!inflated.ok) {
    result.error = "idat: " + inflated.error;
    return result;
  }
  const std::size_t rb = row_bytes(width, depth);
  if (inflated.data.size() != (rb + 1) * height) {
    result.error = "scanline size mismatch";
    return result;
  }

  IndexedImage img;
  img.width = width;
  img.height = height;
  img.palette = palette;
  img.pixels.resize(static_cast<std::size_t>(width) * height);
  std::vector<std::uint8_t> prev;
  std::vector<std::uint8_t> cur(rb);
  for (unsigned y = 0; y < height; ++y) {
    const std::size_t row_start = y * (rb + 1);
    const unsigned filter = inflated.data[row_start];
    if (filter > 4) {
      result.error = "bad filter";
      return result;
    }
    cur.assign(inflated.data.begin() + row_start + 1,
               inflated.data.begin() + row_start + 1 + rb);
    unapply_filter(filter, cur, prev);
    for (unsigned x = 0; x < width; ++x) {
      std::uint8_t v;
      if (depth == 8) {
        v = cur[x];
      } else {
        const unsigned bit = x * depth;
        v = static_cast<std::uint8_t>(
            (cur[bit / 8] >> (8 - depth - (bit % 8))) & ((1u << depth) - 1));
      }
      img.pixels[static_cast<std::size_t>(y) * width + x] = v;
    }
    prev = cur;
  }
  result.image = std::move(img);
  result.ok = true;
  return result;
}

}  // namespace hsim::content
