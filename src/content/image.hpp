// Palette-indexed raster images and deterministic synthetic image content.
//
// The paper's test page embeds real GIFs from 1997 home pages (icons,
// banners, spacers, one large hero image, two animations). We synthesize
// images with comparable structure — flat regions, text-like strokes,
// dithered areas — so that GIF/PNG encoders face realistic statistics.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hpp"

namespace hsim::content {

struct IndexedImage {
  unsigned width = 0;
  unsigned height = 0;
  /// Palette entries as 0xRRGGBB; size is a power of two, 2..256.
  std::vector<std::uint32_t> palette;
  /// Row-major palette indices, width*height entries.
  std::vector<std::uint8_t> pixels;

  std::uint8_t& at(unsigned x, unsigned y) { return pixels[y * width + x]; }
  std::uint8_t at(unsigned x, unsigned y) const {
    return pixels[y * width + x];
  }
  /// Bits per palette index (1..8), from palette size.
  unsigned bit_depth() const;
};

/// What kind of visual content a synthetic image mimics. Affects both size
/// and compressibility characteristics.
enum class ImageKind {
  kSpacer,     // single-colour (invisible layout images; tiny)
  kBullet,     // small icon with a couple of colours
  kTextBanner, // text strokes on flat background (the "solutions" GIF)
  kPhoto,      // dithered many-colour content (compresses poorly)
  kLogo,       // mix of flat areas and detail
};

struct SyntheticSpec {
  ImageKind kind = ImageKind::kBullet;
  unsigned width = 16;
  unsigned height = 16;
  unsigned colors = 4;  // rounded up to a power of two
  std::uint64_t seed = 1;
};

/// Deterministically generates an image matching the spec.
IndexedImage generate_image(const SyntheticSpec& spec);

/// Animation: a sequence of frames over a shared palette. Successive frames
/// differ incrementally (the common animated-GIF pattern).
struct Animation {
  std::vector<IndexedImage> frames;
  unsigned delay_centiseconds = 10;
};

Animation generate_animation(const SyntheticSpec& spec, unsigned frame_count);

// ---- Modern codec size models (the "--content modern" axis) ---------------
//
// The paper asked "fewer bytes vs fewer round trips" with 1997 payloads
// (GIF, later PNG). Re-asking it under 2020s payloads needs WebP/AVIF-class
// sizes for the same 42-image histogram. We model the re-encode as a
// per-kind size ratio against the GIF encoding, per the published
// format-comparison studies (see PAPERS.md "Web Image Formats"): lossless
// WebP graphics land around 0.5-0.75x of their palette-era encodings, lossy
// photographic WebP around 0.35x, and AVIF pushes photographic content to
// roughly a quarter. Tiny images are floored at the container overhead.

enum class ModernCodec { kWebP, kAvif };

std::string_view to_string(ModernCodec codec);
/// File extension including the dot (".webp" / ".avif").
std::string_view extension(ModernCodec codec);

/// Size ratio (modern bytes / GIF bytes) for the given content class.
double modern_size_factor(ImageKind kind, bool animated, ModernCodec codec);

/// Modelled encoded size for a GIF asset of `gif_bytes`, floored at the
/// codec's minimum container size.
std::size_t modern_encoded_size(std::size_t gif_bytes, ImageKind kind,
                                bool animated, ModernCodec codec);

/// Deterministic stand-in container bytes of exactly `size` bytes: a
/// plausible magic header followed by seeded incompressible payload (modern
/// codec output does not deflate further, which matters to the compressed
/// transfer-coding experiments).
std::vector<std::uint8_t> modern_container_bytes(ModernCodec codec,
                                                 std::size_t size,
                                                 std::uint64_t seed);

/// Searches for a SyntheticSpec whose encoding under `encoded_size` lands
/// within `tolerance` (fractional) of `target_bytes`, by scaling dimensions.
/// Used to rebuild the Microscape page's published size histogram.
template <typename EncodedSizeFn>
SyntheticSpec fit_spec_to_size(SyntheticSpec base, std::size_t target_bytes,
                               EncodedSizeFn encoded_size,
                               double tolerance = 0.12) {
  // Geometric search on a scale factor applied to both dimensions.
  double lo = 0.05, hi = 40.0;
  SyntheticSpec best = base;
  std::size_t best_err = static_cast<std::size_t>(-1);
  for (int iter = 0; iter < 28; ++iter) {
    const double mid = std::sqrt(lo * hi);
    SyntheticSpec trial = base;
    trial.width = std::max(1u, static_cast<unsigned>(base.width * mid));
    trial.height = std::max(1u, static_cast<unsigned>(base.height * mid));
    const std::size_t size = encoded_size(trial);
    const std::size_t err = size > target_bytes ? size - target_bytes
                                                : target_bytes - size;
    if (err < best_err) {
      best_err = err;
      best = trial;
    }
    if (static_cast<double>(err) <=
        tolerance * static_cast<double>(target_bytes)) {
      return trial;
    }
    if (size > target_bytes) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return best;
}

}  // namespace hsim::content
