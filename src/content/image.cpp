#include "content/image.hpp"

#include <algorithm>
#include <cmath>

namespace hsim::content {

unsigned IndexedImage::bit_depth() const {
  unsigned bits = 1;
  while ((1u << bits) < palette.size()) ++bits;
  return std::min(bits, 8u);
}

namespace {

unsigned round_up_pow2(unsigned v) {
  unsigned p = 2;
  while (p < v) p <<= 1;
  return std::min(p, 256u);
}

std::vector<std::uint32_t> make_palette(unsigned colors, sim::Rng& rng) {
  std::vector<std::uint32_t> palette(round_up_pow2(colors));
  for (auto& c : palette) {
    c = rng.next_u32() & 0xFFFFFF;
  }
  // Entry 0 is conventionally the background.
  palette[0] = 0xFFFFFF;
  return palette;
}

void draw_text_strokes(IndexedImage& img, sim::Rng& rng, std::uint8_t ink) {
  // Block-letter-like strokes: vertical and horizontal bars in cells.
  const unsigned cell_w = 8, cell_h = img.height;
  for (unsigned cx = 1; cx * cell_w + 6 < img.width; ++cx) {
    const unsigned x0 = cx * cell_w;
    const bool vert_left = rng.chance(0.7);
    const bool vert_right = rng.chance(0.5);
    const bool bar_top = rng.chance(0.5);
    const bool bar_mid = rng.chance(0.6);
    const bool bar_bot = rng.chance(0.5);
    const unsigned inset = cell_h / 5;
    for (unsigned y = inset; y + inset < cell_h; ++y) {
      if (vert_left) img.at(x0, y) = ink;
      if (vert_right) img.at(x0 + 4, y) = ink;
    }
    for (unsigned x = x0; x <= x0 + 4; ++x) {
      if (bar_top) img.at(x, inset) = ink;
      if (bar_mid) img.at(x, cell_h / 2) = ink;
      if (bar_bot) img.at(x, cell_h - inset - 1) = ink;
    }
  }
}

}  // namespace

IndexedImage generate_image(const SyntheticSpec& spec) {
  sim::Rng rng(spec.seed);
  IndexedImage img;
  img.width = std::max(1u, spec.width);
  img.height = std::max(1u, spec.height);
  img.palette = make_palette(std::max(2u, spec.colors), rng);
  img.pixels.assign(static_cast<std::size_t>(img.width) * img.height, 0);
  const auto ncolors = static_cast<std::uint8_t>(img.palette.size());

  switch (spec.kind) {
    case ImageKind::kSpacer:
      // Every pixel background: maximally compressible (70-byte GIFs).
      break;

    case ImageKind::kBullet: {
      // A filled disc with a border colour.
      const double cx = img.width / 2.0, cy = img.height / 2.0;
      const double r = std::min(cx, cy) * 0.8;
      for (unsigned y = 0; y < img.height; ++y) {
        for (unsigned x = 0; x < img.width; ++x) {
          const double d = std::hypot(x - cx, y - cy);
          if (d < r * 0.7) {
            img.at(x, y) = 1 % ncolors;
          } else if (d < r) {
            img.at(x, y) = 2 % ncolors;
          }
        }
      }
      break;
    }

    case ImageKind::kTextBanner: {
      // Flat tinted background with text strokes, like Figure 1's
      // "solutions" banner. Antialiasing dither along rows keeps the image
      // from being unrealistically regular (real text GIFs carried edge
      // dither that limited how much better PNG could do).
      const std::uint8_t bg = 1 % ncolors;
      const std::uint8_t ink = 2 % ncolors;
      std::fill(img.pixels.begin(), img.pixels.end(), bg);
      draw_text_strokes(img, rng, ink);
      // Edge antialiasing: background pixels horizontally adjacent to ink
      // randomly take an intermediate colour, as font rasterisation did.
      for (unsigned y = 0; y < img.height; ++y) {
        for (unsigned x = 1; x + 1 < img.width; ++x) {
          if (img.at(x, y) != bg) continue;
          const bool near_ink =
              img.at(x - 1, y) == ink || img.at(x + 1, y) == ink;
          if (near_ink && rng.chance(0.5)) {
            img.at(x, y) = static_cast<std::uint8_t>(3 % ncolors);
          }
        }
      }
      break;
    }

    case ImageKind::kPhoto: {
      // Heavily dithered photographic content: the typical profile of the
      // page's large hero image. Dither dominates the gradients, which is
      // what quantized-to-palette photos of the era looked like — hard for
      // LZW and nearly as hard for PNG's predictive filters.
      for (unsigned y = 0; y < img.height; ++y) {
        for (unsigned x = 0; x < img.width; ++x) {
          const double v =
              128 + 55 * std::sin(x * 0.05 + y * 0.017) +
              20 * std::sin(y * 0.11) +
              static_cast<double>(rng.uniform(-70, 70));
          const int idx =
              std::clamp(static_cast<int>(v), 0, 255) * ncolors / 256;
          img.at(x, y) = static_cast<std::uint8_t>(idx);
        }
      }
      break;
    }

    case ImageKind::kLogo: {
      // Flat colour blocks with occasional detail rows.
      const unsigned bands = 3 + static_cast<unsigned>(rng.uniform(0, 3));
      for (unsigned y = 0; y < img.height; ++y) {
        const std::uint8_t band_color =
            static_cast<std::uint8_t>((y * bands / img.height) % ncolors);
        for (unsigned x = 0; x < img.width; ++x) {
          img.at(x, y) = band_color;
        }
      }
      draw_text_strokes(img, rng, 3 % ncolors);
      // A sprinkle of detail pixels.
      const unsigned dots =
          static_cast<unsigned>(img.pixels.size() / 40);
      for (unsigned i = 0; i < dots; ++i) {
        const auto x = static_cast<unsigned>(rng.uniform(0, img.width - 1));
        const auto y = static_cast<unsigned>(rng.uniform(0, img.height - 1));
        img.at(x, y) = static_cast<std::uint8_t>(rng.uniform(0, ncolors - 1));
      }
      break;
    }
  }
  return img;
}

Animation generate_animation(const SyntheticSpec& spec,
                             unsigned frame_count) {
  Animation anim;
  IndexedImage base = generate_image(spec);
  sim::Rng rng(spec.seed ^ 0xA11CE);
  for (unsigned f = 0; f < frame_count; ++f) {
    IndexedImage frame = base;
    const auto ncolors = static_cast<std::uint8_t>(frame.palette.size());
    // A wide moving highlight band plus scattered sparkle pixels: banner-ad
    // animations of the era redrew a substantial part of each frame, which
    // is what keeps MNG's delta frames from being trivially empty.
    const unsigned band_x =
        (f * frame.width / std::max(1u, frame_count)) % frame.width;
    const unsigned band_w = std::max(4u, frame.width / 4);
    for (unsigned y = 0; y < frame.height; ++y) {
      for (unsigned x = band_x; x < std::min(band_x + band_w, frame.width);
           ++x) {
        frame.at(x, y) = static_cast<std::uint8_t>(
            (frame.at(x, y) + 1 + f % 3) % ncolors);
      }
    }
    const unsigned sparkles =
        static_cast<unsigned>(frame.pixels.size() / 36);
    for (unsigned i = 0; i < sparkles; ++i) {
      const auto x = static_cast<unsigned>(rng.uniform(0, frame.width - 1));
      const auto y = static_cast<unsigned>(rng.uniform(0, frame.height - 1));
      frame.at(x, y) =
          static_cast<std::uint8_t>(rng.uniform(0, ncolors - 1));
    }
    anim.frames.push_back(std::move(frame));
  }
  return anim;
}

// ---- Modern codec size models ---------------------------------------------

std::string_view to_string(ModernCodec codec) {
  return codec == ModernCodec::kWebP ? "webp" : "avif";
}

std::string_view extension(ModernCodec codec) {
  return codec == ModernCodec::kWebP ? ".webp" : ".avif";
}

double modern_size_factor(ImageKind kind, bool animated, ModernCodec codec) {
  if (animated) return codec == ModernCodec::kWebP ? 0.55 : 0.42;
  switch (kind) {
    case ImageKind::kSpacer:
      // Already near the container floor either way.
      return codec == ModernCodec::kWebP ? 0.80 : 0.78;
    case ImageKind::kBullet:
      return codec == ModernCodec::kWebP ? 0.72 : 0.66;
    case ImageKind::kTextBanner:
      return codec == ModernCodec::kWebP ? 0.60 : 0.52;
    case ImageKind::kLogo:
      return codec == ModernCodec::kWebP ? 0.62 : 0.50;
    case ImageKind::kPhoto:
      // Lossy re-encode of dithered photographic content: the big win.
      return codec == ModernCodec::kWebP ? 0.35 : 0.24;
  }
  return 1.0;
}

namespace {
/// Minimum sensible container size: RIFF/VP8L wrapper for WebP, ftyp+meta
/// boxes for AVIF.
std::size_t container_floor(ModernCodec codec) {
  return codec == ModernCodec::kWebP ? 26 : 48;
}
}  // namespace

std::size_t modern_encoded_size(std::size_t gif_bytes, ImageKind kind,
                                bool animated, ModernCodec codec) {
  const double factor = modern_size_factor(kind, animated, codec);
  const auto modelled = static_cast<std::size_t>(
      std::llround(static_cast<double>(gif_bytes) * factor));
  return std::max(modelled, container_floor(codec));
}

std::vector<std::uint8_t> modern_container_bytes(ModernCodec codec,
                                                 std::size_t size,
                                                 std::uint64_t seed) {
  std::vector<std::uint8_t> out;
  out.reserve(size);
  if (codec == ModernCodec::kWebP) {
    // RIFF <size> WEBP VP8L — enough structure to look like a real file.
    const char riff[] = {'R', 'I', 'F', 'F'};
    out.insert(out.end(), riff, riff + 4);
    const std::uint32_t riff_size =
        size >= 8 ? static_cast<std::uint32_t>(size - 8) : 0;
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(riff_size >> (8 * i)));
    }
    const char fourccs[] = {'W', 'E', 'B', 'P', 'V', 'P', '8', 'L'};
    out.insert(out.end(), fourccs, fourccs + 8);
  } else {
    const char ftyp[] = {0, 0, 0, 0x1c, 'f', 't', 'y', 'p',
                         'a', 'v', 'i', 'f'};
    out.insert(out.end(), ftyp, ftyp + 12);
  }
  // Seeded incompressible payload: arithmetic-coded codec output has no
  // byte-level redundancy left, so the deflate transfer-coding experiments
  // must see noise here, not structure.
  sim::Rng rng(seed ^ 0x5EBAF00D);
  while (out.size() < size) {
    std::uint64_t word = rng.next_u64();
    for (int i = 0; i < 8 && out.size() < size; ++i) {
      out.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
    }
  }
  out.resize(size);
  return out;
}

}  // namespace hsim::content
