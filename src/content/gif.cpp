#include "content/gif.hpp"

#include <algorithm>
#include <cstring>
#include <map>

namespace hsim::content {

namespace {

constexpr unsigned kMaxCodeWidth = 12;
constexpr unsigned kMaxCodes = 1u << kMaxCodeWidth;

// LSB-first bit packer (GIF packs LZW codes LSB first, like DEFLATE).
class LzwBitWriter {
 public:
  void write(std::uint32_t code, unsigned width) {
    acc_ |= static_cast<std::uint64_t>(code) << used_;
    used_ += width;
    while (used_ >= 8) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      used_ -= 8;
    }
  }
  std::vector<std::uint8_t> take() {
    if (used_ > 0) bytes_.push_back(static_cast<std::uint8_t>(acc_));
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned used_ = 0;
};

class LzwBitReader {
 public:
  explicit LzwBitReader(std::span<const std::uint8_t> data) : data_(data) {}
  bool read(std::uint32_t& code, unsigned width) {
    while (used_ < width) {
      if (byte_ >= data_.size()) return false;
      acc_ |= static_cast<std::uint64_t>(data_[byte_++]) << used_;
      used_ += 8;
    }
    code = static_cast<std::uint32_t>(acc_ & ((1u << width) - 1));
    acc_ >>= width;
    used_ -= width;
    return true;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t byte_ = 0;
  std::uint64_t acc_ = 0;
  unsigned used_ = 0;
};

void append_u16(std::vector<std::uint8_t>& out, unsigned v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

/// Splits raw LZW bytes into 255-byte sub-blocks with a 0 terminator.
void append_sub_blocks(std::vector<std::uint8_t>& out,
                       std::span<const std::uint8_t> data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t n = std::min<std::size_t>(255, data.size() - pos);
    out.push_back(static_cast<std::uint8_t>(n));
    out.insert(out.end(), data.begin() + pos, data.begin() + pos + n);
    pos += n;
  }
  out.push_back(0);
}

unsigned palette_field(const IndexedImage& img) {
  // Size field N encodes 2^(N+1) palette entries.
  unsigned n = 0;
  while ((2u << n) < img.palette.size()) ++n;
  return n;
}

void append_color_table(std::vector<std::uint8_t>& out,
                        const IndexedImage& img) {
  const unsigned n = palette_field(img);
  const std::size_t entries = 2u << n;
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint32_t c = i < img.palette.size() ? img.palette[i] : 0;
    out.push_back(static_cast<std::uint8_t>((c >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((c >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(c & 0xFF));
  }
}

void append_image_frame(std::vector<std::uint8_t>& out,
                        const IndexedImage& img) {
  out.push_back(0x2C);  // image separator
  append_u16(out, 0);   // left
  append_u16(out, 0);   // top
  append_u16(out, img.width);
  append_u16(out, img.height);
  out.push_back(0);  // no local color table, not interlaced

  const unsigned min_code_size = std::max(2u, img.bit_depth());
  out.push_back(static_cast<std::uint8_t>(min_code_size));
  const auto lzw = gif_lzw_compress(img.pixels, min_code_size);
  append_sub_blocks(out, lzw);
}

}  // namespace

std::vector<std::uint8_t> gif_lzw_compress(
    std::span<const std::uint8_t> indices, unsigned min_code_size) {
  LzwBitWriter out;
  const std::uint32_t clear_code = 1u << min_code_size;
  const std::uint32_t eoi_code = clear_code + 1;

  // Dictionary maps (prefix_code << 8 | byte) -> code.
  std::map<std::uint32_t, std::uint32_t> dict;
  std::uint32_t next_code = eoi_code + 1;
  unsigned width = min_code_size + 1;

  out.write(clear_code, width);
  if (indices.empty()) {
    out.write(eoi_code, width);
    return out.take();
  }

  auto reset_dict = [&] {
    dict.clear();
    next_code = eoi_code + 1;
    width = min_code_size + 1;
  };

  std::uint32_t current = indices[0];
  for (std::size_t i = 1; i < indices.size(); ++i) {
    const std::uint8_t byte = indices[i];
    const std::uint32_t key = (current << 8) | byte;
    if (auto it = dict.find(key); it != dict.end()) {
      current = it->second;
      continue;
    }
    out.write(current, width);
    dict[key] = next_code++;
    // Widen when the next code to be EMITTED would not fit; GIF widens when
    // next_code exceeds the current width's range.
    if (next_code > (1u << width) && width < kMaxCodeWidth) {
      ++width;
    } else if (next_code >= kMaxCodes) {
      out.write(clear_code, width);
      reset_dict();
    }
    current = byte;
  }
  out.write(current, width);
  out.write(eoi_code, width);
  return out.take();
}

std::optional<std::vector<std::uint8_t>> gif_lzw_decompress(
    std::span<const std::uint8_t> data, unsigned min_code_size) {
  LzwBitReader in(data);
  const std::uint32_t clear_code = 1u << min_code_size;
  const std::uint32_t eoi_code = clear_code + 1;

  std::vector<std::vector<std::uint8_t>> dict;
  unsigned width = 0;
  auto reset_dict = [&] {
    dict.assign(eoi_code + 1, {});
    for (std::uint32_t i = 0; i < clear_code; ++i) {
      dict[i] = {static_cast<std::uint8_t>(i)};
    }
    width = min_code_size + 1;
  };
  reset_dict();

  std::vector<std::uint8_t> out;
  std::uint32_t prev = UINT32_MAX;
  std::uint32_t code = 0;
  while (in.read(code, width)) {
    if (code == clear_code) {
      reset_dict();
      prev = UINT32_MAX;
      continue;
    }
    if (code == eoi_code) return out;
    std::vector<std::uint8_t> entry;
    if (code < dict.size() && !dict[code].empty()) {
      entry = dict[code];
    } else if (code == dict.size() && prev != UINT32_MAX) {
      // The (K omega K) special case.
      entry = dict[prev];
      entry.push_back(dict[prev][0]);
    } else {
      return std::nullopt;
    }
    out.insert(out.end(), entry.begin(), entry.end());
    if (prev != UINT32_MAX && dict.size() < kMaxCodes) {
      std::vector<std::uint8_t> fresh = dict[prev];
      fresh.push_back(entry[0]);
      dict.push_back(std::move(fresh));
      // The decoder's dictionary lags the encoder's by one entry (the encoder
      // adds after each emission; the decoder adds one read later), so widen
      // as soon as the size *reaches* the width limit.
      if (dict.size() >= (1u << width) && width < kMaxCodeWidth) {
        ++width;
      }
    }
    prev = code;
  }
  return std::nullopt;  // missing EOI
}

std::vector<std::uint8_t> encode_gif(const IndexedImage& image) {
  std::vector<std::uint8_t> out;
  const char* sig = "GIF87a";
  out.insert(out.end(), sig, sig + 6);
  append_u16(out, image.width);
  append_u16(out, image.height);
  const unsigned pf = palette_field(image);
  out.push_back(static_cast<std::uint8_t>(0x80 | (pf << 4) | pf));
  out.push_back(0);  // background color index
  out.push_back(0);  // aspect ratio
  append_color_table(out, image);
  append_image_frame(out, image);
  out.push_back(0x3B);  // trailer
  return out;
}

std::vector<std::uint8_t> encode_animated_gif(const Animation& animation) {
  std::vector<std::uint8_t> out;
  if (animation.frames.empty()) return out;
  const IndexedImage& first = animation.frames.front();
  const char* sig = "GIF89a";
  out.insert(out.end(), sig, sig + 6);
  append_u16(out, first.width);
  append_u16(out, first.height);
  const unsigned pf = palette_field(first);
  out.push_back(static_cast<std::uint8_t>(0x80 | (pf << 4) | pf));
  out.push_back(0);
  out.push_back(0);
  append_color_table(out, first);

  // Netscape looping extension.
  const std::uint8_t loop_ext[] = {0x21, 0xFF, 0x0B, 'N', 'E', 'T', 'S',
                                   'C',  'A',  'P',  'E', '2', '.', '0',
                                   0x03, 0x01, 0x00, 0x00, 0x00};
  out.insert(out.end(), std::begin(loop_ext), std::end(loop_ext));

  for (const IndexedImage& frame : animation.frames) {
    // Graphic control extension (delay).
    out.push_back(0x21);
    out.push_back(0xF9);
    out.push_back(0x04);
    out.push_back(0x00);  // no disposal, no transparency
    append_u16(out, animation.delay_centiseconds);
    out.push_back(0x00);  // transparent color index (unused)
    out.push_back(0x00);  // terminator
    append_image_frame(out, frame);
  }
  out.push_back(0x3B);
  return out;
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

namespace {

struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  bool need(std::size_t n) const { return pos + n <= data.size(); }
  std::uint8_t u8() { return data[pos++]; }
  unsigned u16() {
    const unsigned v = data[pos] | (data[pos + 1] << 8);
    pos += 2;
    return v;
  }
};

bool read_sub_blocks(Cursor& c, std::vector<std::uint8_t>& out) {
  for (;;) {
    if (!c.need(1)) return false;
    const std::uint8_t len = c.u8();
    if (len == 0) return true;
    if (!c.need(len)) return false;
    out.insert(out.end(), c.data.begin() + c.pos,
               c.data.begin() + c.pos + len);
    c.pos += len;
  }
}

}  // namespace

GifDecodeResult decode_gif(std::span<const std::uint8_t> data) {
  GifDecodeResult result;
  Cursor c{data};
  if (!c.need(13)) {
    result.error = "truncated header";
    return result;
  }
  if (std::memcmp(data.data(), "GIF87a", 6) != 0 &&
      std::memcmp(data.data(), "GIF89a", 6) != 0) {
    result.error = "bad signature";
    return result;
  }
  c.pos = 6;
  const unsigned screen_w = c.u16();
  const unsigned screen_h = c.u16();
  const std::uint8_t packed = c.u8();
  c.pos += 2;  // background, aspect
  std::vector<std::uint32_t> global_palette;
  if (packed & 0x80) {
    const std::size_t entries = 2u << (packed & 0x07);
    if (!c.need(entries * 3)) {
      result.error = "truncated palette";
      return result;
    }
    for (std::size_t i = 0; i < entries; ++i) {
      const std::uint32_t r = c.u8(), g = c.u8(), b = c.u8();
      global_palette.push_back((r << 16) | (g << 8) | b);
    }
  }
  (void)screen_w;
  (void)screen_h;

  for (;;) {
    if (!c.need(1)) {
      result.error = "missing trailer";
      return result;
    }
    const std::uint8_t block = c.u8();
    if (block == 0x3B) break;  // trailer
    if (block == 0x21) {       // extension: skip
      if (!c.need(1)) {
        result.error = "truncated extension";
        return result;
      }
      c.u8();  // label
      std::vector<std::uint8_t> ignored;
      if (!read_sub_blocks(c, ignored)) {
        result.error = "truncated extension data";
        return result;
      }
      continue;
    }
    if (block != 0x2C) {
      result.error = "unknown block";
      return result;
    }
    if (!c.need(9)) {
      result.error = "truncated image descriptor";
      return result;
    }
    c.u16();  // left
    c.u16();  // top
    const unsigned w = c.u16();
    const unsigned h = c.u16();
    const std::uint8_t ipacked = c.u8();
    std::vector<std::uint32_t> palette = global_palette;
    if (ipacked & 0x80) {
      const std::size_t entries = 2u << (ipacked & 0x07);
      if (!c.need(entries * 3)) {
        result.error = "truncated local palette";
        return result;
      }
      palette.clear();
      for (std::size_t i = 0; i < entries; ++i) {
        const std::uint32_t r = c.u8(), g = c.u8(), b = c.u8();
        palette.push_back((r << 16) | (g << 8) | b);
      }
    }
    if (!c.need(1)) {
      result.error = "truncated lzw header";
      return result;
    }
    const unsigned min_code_size = c.u8();
    std::vector<std::uint8_t> lzw;
    if (!read_sub_blocks(c, lzw)) {
      result.error = "truncated image data";
      return result;
    }
    const auto pixels = gif_lzw_decompress(lzw, min_code_size);
    if (!pixels || pixels->size() != static_cast<std::size_t>(w) * h) {
      result.error = "lzw decode failed";
      return result;
    }
    IndexedImage img;
    img.width = w;
    img.height = h;
    img.palette = palette;
    img.pixels = *pixels;
    result.frames.push_back(std::move(img));
  }
  result.ok = !result.frames.empty();
  if (!result.ok) result.error = "no frames";
  return result;
}

}  // namespace hsim::content
