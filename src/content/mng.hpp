// Minimal MNG-style animation container.
//
// Substitution note (documented in DESIGN.md): full MNG (draft 19970427) is a
// large specification; what the paper measures is only the *size advantage*
// of MNG over animated GIF, which comes from two mechanisms this writer
// reproduces faithfully:
//   1. frames are deflate-compressed (PNG-family compression, beats LZW);
//   2. non-first frames are stored as deltas against the previous frame,
//      which are mostly zero bytes and compress extremely well.
// The container uses MNG's chunk structure (signature, MHDR, IHDR/IDAT per
// frame, MEND) with delta frames in a D-IDAT chunk.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "content/image.hpp"

namespace hsim::content {

std::vector<std::uint8_t> encode_mng(const Animation& animation);

struct MngDecodeResult {
  Animation animation;
  bool ok = false;
  std::string error;
};

MngDecodeResult decode_mng(std::span<const std::uint8_t> data);

}  // namespace hsim::content
