// GIF87a/89a encoder and decoder with a from-scratch LZW codec.
//
// Static images use GIF87a; animations use GIF89a with the Netscape looping
// application extension and per-frame graphic control extensions, matching
// the animated banners on 1997 home pages.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "content/image.hpp"

namespace hsim::content {

/// Encodes a single-frame GIF87a.
std::vector<std::uint8_t> encode_gif(const IndexedImage& image);

/// Encodes an animated GIF89a (all frames full-size, shared palette).
std::vector<std::uint8_t> encode_animated_gif(const Animation& animation);

struct GifDecodeResult {
  std::vector<IndexedImage> frames;
  bool ok = false;
  std::string error;
};

/// Decodes either form. Every encoder output must decode back exactly.
GifDecodeResult decode_gif(std::span<const std::uint8_t> data);

// ---- LZW (GIF variant: variable code width, clear/EOI codes) -------------

/// Compresses `indices` with GIF-LZW at the given root code size (2..8).
std::vector<std::uint8_t> gif_lzw_compress(
    std::span<const std::uint8_t> indices, unsigned min_code_size);

/// Decompresses; empty optional on malformed input.
std::optional<std::vector<std::uint8_t>> gif_lzw_decompress(
    std::span<const std::uint8_t> data, unsigned min_code_size);

}  // namespace hsim::content
