#include "content/mng.hpp"

#include <cstring>

#include "content/png.hpp"
#include "deflate/checksum.hpp"
#include "deflate/deflate.hpp"
#include "deflate/inflate.hpp"

namespace hsim::content {

namespace {

constexpr std::uint8_t kMngSignature[8] = {0x8A, 'M',  'N',  'G',
                                           0x0D, 0x0A, 0x1A, 0x0A};

void append_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t read_u32be(std::span<const std::uint8_t> d, std::size_t at) {
  return (static_cast<std::uint32_t>(d[at]) << 24) |
         (static_cast<std::uint32_t>(d[at + 1]) << 16) |
         (static_cast<std::uint32_t>(d[at + 2]) << 8) |
         static_cast<std::uint32_t>(d[at + 3]);
}

void append_chunk(std::vector<std::uint8_t>& out, const char type[4],
                  std::span<const std::uint8_t> data) {
  append_u32be(out, static_cast<std::uint32_t>(data.size()));
  std::vector<std::uint8_t> body(type, type + 4);
  body.insert(body.end(), data.begin(), data.end());
  out.insert(out.end(), body.begin(), body.end());
  append_u32be(out, deflate::crc32(body));
}

}  // namespace

std::vector<std::uint8_t> encode_mng(const Animation& animation) {
  std::vector<std::uint8_t> out;
  if (animation.frames.empty()) return out;
  out.insert(out.end(), kMngSignature, kMngSignature + 8);

  const IndexedImage& first = animation.frames.front();
  std::vector<std::uint8_t> mhdr;
  append_u32be(mhdr, first.width);
  append_u32be(mhdr, first.height);
  append_u32be(mhdr, 100 / std::max(1u, animation.delay_centiseconds));
  append_u32be(mhdr, 0);  // layer count unknown
  append_u32be(mhdr, static_cast<std::uint32_t>(animation.frames.size()));
  append_u32be(mhdr, 0);  // play time unknown
  append_u32be(mhdr, 0);  // simplicity profile
  append_chunk(out, "MHDR", mhdr);

  // First frame: a full PNG datastream (without the PNG signature; the
  // chunks are embedded directly, as MNG does).
  {
    const auto png = encode_png(first, PngOptions{});
    out.insert(out.end(), png.begin() + 8, png.end() - 12);  // strip sig+IEND
  }

  // Subsequent frames: delta against the previous frame, deflate-compressed.
  for (std::size_t f = 1; f < animation.frames.size(); ++f) {
    const IndexedImage& prev = animation.frames[f - 1];
    const IndexedImage& cur = animation.frames[f];
    std::vector<std::uint8_t> delta(cur.pixels.size());
    for (std::size_t i = 0; i < cur.pixels.size(); ++i) {
      delta[i] = static_cast<std::uint8_t>(cur.pixels[i] - prev.pixels[i]);
    }
    const auto compressed = deflate::zlib_compress(delta);
    append_chunk(out, "DIDT", compressed);  // delta-IDAT (simplified)
  }

  append_chunk(out, "MEND", {});
  return out;
}

MngDecodeResult decode_mng(std::span<const std::uint8_t> data) {
  MngDecodeResult result;
  if (data.size() < 8 || std::memcmp(data.data(), kMngSignature, 8) != 0) {
    result.error = "bad signature";
    return result;
  }
  std::size_t pos = 8;
  unsigned width = 0, height = 0, depth = 0;
  std::vector<std::uint32_t> palette;
  std::vector<std::uint8_t> idat;
  bool mend = false;

  auto finish_first_frame = [&]() -> bool {
    if (!idat.empty() && result.animation.frames.empty()) {
      // Reconstruct a PNG datastream and reuse the PNG decoder.
      std::vector<std::uint8_t> png = {0x89, 'P',  'N',  'G',
                                       0x0D, 0x0A, 0x1A, 0x0A};
      std::vector<std::uint8_t> ihdr;
      append_u32be(ihdr, width);
      append_u32be(ihdr, height);
      ihdr.push_back(static_cast<std::uint8_t>(depth));
      ihdr.push_back(3);
      ihdr.push_back(0);
      ihdr.push_back(0);
      ihdr.push_back(0);
      append_chunk(png, "IHDR", ihdr);
      std::vector<std::uint8_t> plte;
      for (std::uint32_t c : palette) {
        plte.push_back(static_cast<std::uint8_t>((c >> 16) & 0xFF));
        plte.push_back(static_cast<std::uint8_t>((c >> 8) & 0xFF));
        plte.push_back(static_cast<std::uint8_t>(c & 0xFF));
      }
      append_chunk(png, "PLTE", plte);
      append_chunk(png, "IDAT", idat);
      append_chunk(png, "IEND", {});
      PngDecodeResult frame = decode_png(png);
      if (!frame.ok) {
        result.error = "first frame: " + frame.error;
        return false;
      }
      result.animation.frames.push_back(std::move(frame.image));
    }
    return true;
  };

  while (pos + 12 <= data.size() && !mend) {
    const std::uint32_t len = read_u32be(data, pos);
    if (pos + 12 + len > data.size()) {
      result.error = "truncated chunk";
      return result;
    }
    const char* type = reinterpret_cast<const char*>(&data[pos + 4]);
    std::span<const std::uint8_t> body(&data[pos + 8], len);
    if (std::memcmp(type, "IHDR", 4) == 0) {
      width = read_u32be(data, pos + 8);
      height = read_u32be(data, pos + 12);
      depth = body[8];
    } else if (std::memcmp(type, "PLTE", 4) == 0) {
      palette.clear();
      for (std::size_t i = 0; i + 2 < len; i += 3) {
        palette.push_back((static_cast<std::uint32_t>(body[i]) << 16) |
                          (static_cast<std::uint32_t>(body[i + 1]) << 8) |
                          body[i + 2]);
      }
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      idat.insert(idat.end(), body.begin(), body.end());
    } else if (std::memcmp(type, "DIDT", 4) == 0) {
      if (!finish_first_frame()) return result;
      if (result.animation.frames.empty()) {
        result.error = "delta before first frame";
        return result;
      }
      const auto delta = deflate::zlib_decompress(body);
      if (!delta.ok) {
        result.error = "delta inflate: " + delta.error;
        return result;
      }
      const IndexedImage& prev = result.animation.frames.back();
      if (delta.data.size() != prev.pixels.size()) {
        result.error = "delta size mismatch";
        return result;
      }
      IndexedImage next = prev;
      for (std::size_t i = 0; i < delta.data.size(); ++i) {
        next.pixels[i] =
            static_cast<std::uint8_t>(prev.pixels[i] + delta.data[i]);
      }
      result.animation.frames.push_back(std::move(next));
    } else if (std::memcmp(type, "MEND", 4) == 0) {
      if (!finish_first_frame()) return result;
      mend = true;
    }
    pos += 12 + len;
  }
  result.ok = mend && !result.animation.frames.empty();
  if (!result.ok && result.error.empty()) result.error = "incomplete mng";
  return result;
}

}  // namespace hsim::content
