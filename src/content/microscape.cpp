#include "content/microscape.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "content/gif.hpp"

namespace hsim::content {

namespace {

/// Published size histogram of the 40 static images (bytes). 19 under 1 KB,
/// 7 of 1-2 KB, 6 of 2-3 KB, 8 larger including the ~40 KB hero; the total
/// approximates the paper's 103,299 bytes. Entry 14 is the 682-byte
/// "solutions" banner of Figure 1.
constexpr std::array<std::size_t, 40> kStaticTargets = {
    70,   120,  150,  180,   220,  250,  280,  320,  360,  400,
    450,  500,  560,  620,   682,  740,  800,  870,  950,  1100,
    1250, 1400, 1500, 1650,  1800, 1950, 2100, 2300, 2500, 2600,
    2800, 2950, 3000, 3300,  3700, 4200, 4800, 5500, 6800, 40000};

/// The two animations total ~24,988 bytes.
constexpr std::array<std::size_t, 2> kAnimationTargets = {9000, 16000};

ImageKind kind_for_target(std::size_t bytes, std::uint64_t seed) {
  if (bytes < 110) return ImageKind::kSpacer;
  if (bytes < 500) return ImageKind::kBullet;
  if (bytes < 1200) return ImageKind::kTextBanner;
  if (bytes < 3000) return seed % 2 == 0 ? ImageKind::kTextBanner
                                         : ImageKind::kLogo;
  if (bytes < 20000) return ImageKind::kLogo;
  return ImageKind::kPhoto;
}

unsigned colors_for_kind(ImageKind kind) {
  switch (kind) {
    case ImageKind::kSpacer: return 2;
    case ImageKind::kBullet: return 4;
    case ImageKind::kTextBanner: return 4;
    case ImageKind::kLogo: return 16;
    case ImageKind::kPhoto: return 32;
  }
  return 4;
}

SiteImage build_static_image(std::size_t index, std::size_t target_bytes,
                             std::uint64_t seed) {
  SyntheticSpec base;
  base.kind = kind_for_target(target_bytes, seed + index);
  base.colors = colors_for_kind(base.kind);
  base.seed = seed * 131 + index;
  base.width = 24;
  base.height = base.kind == ImageKind::kTextBanner ? 24 : 16;

  const SyntheticSpec fitted = fit_spec_to_size(
      base, target_bytes,
      [](const SyntheticSpec& s) { return encode_gif(generate_image(s)).size(); });

  SiteImage img;
  char path[64];
  std::snprintf(path, sizeof path, "/images/img%02zu.gif", index);
  img.path = path;
  img.kind = fitted.kind;
  img.source = generate_image(fitted);
  img.width = img.source.width;
  img.height = img.source.height;
  img.gif_bytes = encode_gif(img.source);
  return img;
}

SiteImage build_animation(std::size_t index, std::size_t target_bytes,
                          std::uint64_t seed) {
  constexpr unsigned kFrames = 8;
  SyntheticSpec base;
  base.kind = ImageKind::kLogo;
  base.colors = 16;
  base.seed = seed * 977 + index;
  base.width = 40;
  base.height = 30;

  const SyntheticSpec fitted = fit_spec_to_size(
      base, target_bytes, [](const SyntheticSpec& s) {
        return encode_animated_gif(generate_animation(s, kFrames)).size();
      });

  SiteImage img;
  char path[64];
  std::snprintf(path, sizeof path, "/images/anim%02zu.gif", index);
  img.path = path;
  img.kind = ImageKind::kLogo;
  img.animated = true;
  img.source_animation = generate_animation(fitted, kFrames);
  img.width = img.source_animation.frames.front().width;
  img.height = img.source_animation.frames.front().height;
  img.gif_bytes = encode_animated_gif(img.source_animation);
  return img;
}

/// 1997-flavoured HTML around the 42 image references, padded with realistic
/// markup until the target size is reached.
std::string build_html(const std::vector<SiteImage>& images,
                       std::size_t target_bytes, sim::Rng& rng) {
  static const char* kWords[] = {
      "solutions", "products",   "download",  "support",   "internet",
      "netscape",  "microsoft",  "explorer",  "homepage",  "developer",
      "software",  "services",   "community", "business",  "partners",
      "security",  "multimedia", "directory", "channels",  "navigator"};
  static const char* kSyllables[] = {"ac", "tor", "net", "web", "ma", "li",
                                     "com", "ser", "ver", "pro", "in", "dex",
                                     "sta", "ge", "on", "ix", "ca", "ble",
                                     "mo", "dem", "su", "per", "vi", "sion"};
  // Real 1997 home pages mixed boilerplate markup (very compressible) with
  // genuine prose, product names and numbers (much less so). The synthetic
  // word stream blends a small hot vocabulary with generated names so the
  // page deflates by the paper's factor of ~3.8, not by 9.
  auto word = [&]() -> std::string {
    if (rng.chance(0.45)) return kWords[rng.uniform(0, 19)];
    std::string w;
    const int syllables = static_cast<int>(rng.uniform(2, 4));
    for (int i = 0; i < syllables; ++i) w += kSyllables[rng.uniform(0, 23)];
    if (rng.chance(0.3)) w += std::to_string(rng.uniform(0, 97));
    return w;
  };

  std::string html;
  html.reserve(target_bytes + 1024);
  html +=
      "<html>\n<head>\n<title>Microscape - combined home page test "
      "site</title>\n<meta http-equiv=\"Content-Type\" "
      "content=\"text/html\">\n</head>\n"
      "<body bgcolor=\"#FFFFFF\" text=\"#000000\" link=\"#0000EE\">\n"
      "<center>\n<table border=\"0\" cellspacing=\"0\" cellpadding=\"0\" "
      "width=\"600\">\n";

  // Interleave image references with padding rows so that references are
  // spread through the document the way a real page spreads them (this is
  // what determines how many <img> tags fit in the first TCP segment).
  const std::size_t per_image_budget =
      target_bytes / (images.size() + 1);
  std::size_t next_image = 0;
  char buf[512];
  while (next_image < images.size() || html.size() < target_bytes - 64) {
    if (next_image < images.size() &&
        html.size() >= (next_image + 1) * per_image_budget -
                           per_image_budget / 2) {
      const SiteImage& img = images[next_image];
      std::snprintf(buf, sizeof buf,
                    "<tr><td align=\"left\" valign=\"top\"><a "
                    "href=\"/%s.html\"><img src=\"%s\" width=\"%u\" "
                    "height=\"%u\" border=\"0\" alt=\"%s\"></a></td></tr>\n",
                    word().c_str(), img.path.c_str(), img.width, img.height,
                    word().c_str());
      html += buf;
      ++next_image;
      continue;
    }
    if (html.size() >= target_bytes - 64 && next_image >= images.size()) {
      break;
    }
    // Padding rows: nav tables, font soup, comments — the redundant markup
    // that makes 1997 HTML deflate so well.
    switch (rng.uniform(0, 3)) {
      case 0:
        std::snprintf(buf, sizeof buf,
                      "<tr><td align=\"center\"><font face=\"Arial, "
                      "Helvetica\" size=\"2\"><a href=\"/%s/%s.html\">%s "
                      "%s</a>&nbsp;|&nbsp;<a href=\"/%s/index.html\">%s"
                      "</a></font></td></tr>\n",
                      word().c_str(), word().c_str(), word().c_str(),
                      word().c_str(), word().c_str(), word().c_str());
        break;
      case 1:
        std::snprintf(buf, sizeof buf,
                      "<tr><td bgcolor=\"#003366\"><font color=\"#FFFFFF\" "
                      "size=\"3\"><b>%s %s %s</b></font><br>%s %s %s %s "
                      "%s.</td></tr>\n",
                      word().c_str(), word().c_str(), word().c_str(),
                      word().c_str(), word().c_str(), word().c_str(),
                      word().c_str(), word().c_str());
        break;
      case 2:
        std::snprintf(buf, sizeof buf,
                      "<!-- %s %s navigation section -->\n<tr><td><table "
                      "border=\"0\" width=\"100%%\"><tr><td>%s</td><td>%s"
                      "</td><td>%s</td></tr></table></td></tr>\n",
                      word().c_str(), word().c_str(), word().c_str(),
                      word().c_str(), word().c_str());
        break;
      default:
        std::snprintf(buf, sizeof buf,
                      "<tr><td><font size=\"2\">%s %s %s %s %s %s %s %s %s "
                      "%s</font></td></tr>\n",
                      word().c_str(), word().c_str(), word().c_str(),
                      word().c_str(), word().c_str(), word().c_str(),
                      word().c_str(), word().c_str(), word().c_str(),
                      word().c_str());
        break;
    }
    html += buf;
  }
  html += "</table>\n</center>\n</body>\n</html>\n";
  return html;
}

}  // namespace

std::size_t MicroscapeSite::static_gif_bytes() const {
  std::size_t n = 0;
  for (const SiteImage& img : images) {
    if (!img.animated) n += img.gif_bytes.size();
  }
  return n;
}

std::size_t MicroscapeSite::animated_gif_bytes() const {
  std::size_t n = 0;
  for (const SiteImage& img : images) {
    if (img.animated) n += img.gif_bytes.size();
  }
  return n;
}

std::size_t MicroscapeSite::total_image_bytes() const {
  return static_gif_bytes() + animated_gif_bytes();
}

std::vector<ImageReplacement> MicroscapeSite::css_replacements() const {
  std::vector<ImageReplacement> out;
  for (const SiteImage& img : images) {
    if (img.animated) continue;  // the CSS analysis covers the 40 static GIFs
    out.push_back(make_replacement(img.path, img.kind, img.gif_bytes.size(),
                                   img.width, img.height));
  }
  return out;
}

MicroscapeSite build_microscape(const MicroscapeConfig& config) {
  MicroscapeSite site;
  sim::Rng rng(config.seed);
  if (config.build_images) {
    for (std::size_t i = 0; i < kStaticTargets.size(); ++i) {
      site.images.push_back(
          build_static_image(i, kStaticTargets[i], config.seed));
    }
    for (std::size_t i = 0; i < kAnimationTargets.size(); ++i) {
      site.images.push_back(
          build_animation(i, kAnimationTargets[i], config.seed));
    }
    // Spread the animations through the page rather than leaving them last.
    std::swap(site.images[8], site.images[40]);
    std::swap(site.images[25], site.images[41]);
  } else {
    // HTML-only mode still needs plausible <img> tags.
    for (std::size_t i = 0; i < 42; ++i) {
      SiteImage img;
      char path[64];
      std::snprintf(path, sizeof path, "/images/img%02zu.gif", i);
      img.path = path;
      img.kind = ImageKind::kBullet;
      img.width = 16;
      img.height = 16;
      site.images.push_back(std::move(img));
    }
  }
  site.html = build_html(site.images, config.html_bytes, rng);
  return site;
}

MicroscapeSite modernize_site(const MicroscapeSite& site, ModernCodec codec) {
  MicroscapeSite modern = site;
  for (std::size_t i = 0; i < modern.images.size(); ++i) {
    SiteImage& img = modern.images[i];
    const std::size_t size = modern_encoded_size(
        img.gif_bytes.size(), img.kind, img.animated, codec);
    // Seed from the image's position so every asset gets distinct (but
    // stable) incompressible bytes.
    img.gif_bytes = modern_container_bytes(codec, size, 0xC0DEC000 + i);

    std::string path = img.path;
    const std::size_t dot = path.rfind(".gif");
    if (dot != std::string::npos) {
      path.replace(dot, 4, extension(codec));
      // Every HTML reference follows the path rename.
      for (std::size_t at = modern.html.find(img.path);
           at != std::string::npos;
           at = modern.html.find(img.path, at + path.size())) {
        modern.html.replace(at, img.path.size(), path);
      }
      img.path = std::move(path);
    }
  }
  return modern;
}

std::vector<std::string> scan_image_references(std::string_view html_prefix) {
  std::vector<std::string> refs;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t img = html_prefix.find("<img ", pos);
    if (img == std::string_view::npos) break;
    const std::size_t src = html_prefix.find("src=\"", img);
    if (src == std::string_view::npos) break;
    const std::size_t start = src + 5;
    const std::size_t end = html_prefix.find('"', start);
    if (end == std::string_view::npos) break;  // tag still incomplete
    refs.emplace_back(html_prefix.substr(start, end - start));
    pos = end + 1;
  }
  return refs;
}

}  // namespace hsim::content
