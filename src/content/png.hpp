// PNG encoder/decoder for palette-indexed images (RFC 2083), built on the
// from-scratch zlib/deflate implementation. Encoded files carry the gAMA
// chunk, which the paper notes adds 16 bytes per image relative to GIF but
// buys cross-platform colour fidelity.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "content/image.hpp"

namespace hsim::content {

struct PngOptions {
  /// Include a gAMA chunk (16 bytes: length+type+data+crc), as the paper's
  /// converted images did.
  bool include_gamma = true;
  /// Per-row filter selection: false = filter 0 everywhere, true = choose
  /// the filter minimizing sum of absolute differences per row.
  bool adaptive_filtering = true;
  int compression_level = 6;
};

std::vector<std::uint8_t> encode_png(const IndexedImage& image,
                                     PngOptions options = {});

struct PngDecodeResult {
  IndexedImage image;
  bool ok = false;
  bool had_gamma = false;
  std::string error;
};

PngDecodeResult decode_png(std::span<const std::uint8_t> data);

}  // namespace hsim::content
