// The "Microscape" synthetic test site.
//
// The paper combined the 1997 Netscape and Microsoft home pages into one
// page: 42 KB of HTML with 42 inlined GIFs totalling ~125 KB (40 static
// images of 103,299 bytes — 19 under 1 KB, 7 of 1-2 KB, 6 of 2-3 KB, one
// ~40 KB hero image — plus 2 animations totalling 24,988 bytes). This module
// deterministically regenerates a site with that published size histogram:
// synthetic images are fitted so their *actual GIF encodings* land on the
// published sizes, and the HTML is realistic 1997 tag soup that deflates by
// roughly the paper's factor of three.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "content/css.hpp"
#include "content/image.hpp"

namespace hsim::content {

struct SiteImage {
  std::string path;            // e.g. "/images/img07.gif"
  ImageKind kind;
  bool animated = false;
  std::vector<std::uint8_t> gif_bytes;
  /// Source raster(s), kept for the PNG/MNG conversion experiments.
  IndexedImage source;         // static images
  Animation source_animation;  // animated images
  unsigned width = 0;
  unsigned height = 0;
};

struct MicroscapeSite {
  std::string html;               // body of "/index.html"
  std::vector<SiteImage> images;  // 42 entries, order matches the HTML

  std::size_t static_gif_bytes() const;
  std::size_t animated_gif_bytes() const;
  std::size_t total_image_bytes() const;
  std::size_t total_payload_bytes() const {
    return html.size() + total_image_bytes();
  }

  /// CSS replacement descriptors for every image (Figure 1 experiment).
  std::vector<ImageReplacement> css_replacements() const;
};

struct MicroscapeConfig {
  std::uint64_t seed = 1997;
  /// Target byte sizes; defaults reproduce the paper's histogram.
  std::size_t html_bytes = 42 * 1024;
  bool build_images = true;  // false skips image fitting (HTML-only tests)
};

MicroscapeSite build_microscape(const MicroscapeConfig& config = {});

/// The "--content modern" axis: the same page re-encoded with a 2020s image
/// codec. Rasters, layout and HTML structure are identical; every image's
/// bytes are replaced by a modelled WebP/AVIF-class container (see
/// image.hpp: per-kind size ratios against the GIF encoding, seeded
/// incompressible payload) and its path/HTML references renamed from .gif
/// to the codec's extension. Deterministic: the same input site and codec
/// always produce the same modern site.
MicroscapeSite modernize_site(const MicroscapeSite& site,
                              ModernCodec codec = ModernCodec::kWebP);

/// Extracts src="..." references in document order, possibly from a partial
/// HTML prefix — the incremental scanning a pipelining client performs as
/// bytes arrive. `consumed` returns how far scanning got (complete tags
/// only), so a caller can resume from there with more data.
std::vector<std::string> scan_image_references(std::string_view html_prefix);

}  // namespace hsim::content
