#include "content/css.hpp"

#include <cstdio>

namespace hsim::content {

std::string solutions_banner_css() {
  // Verbatim from the paper (Figure 1's replacement), ~150 bytes.
  return
      "P.banner {\n"
      " color: white;\n"
      " background: #FC0;\n"
      " font: bold oblique 20px sans-serif;\n"
      " padding: 0.2em 10em 0.2em 1em;\n"
      "}\n"
      "<P CLASS=banner> solutions\n";
}

ImageReplacement make_replacement(const std::string& path, ImageKind kind,
                                  std::size_t gif_bytes, unsigned width,
                                  unsigned height) {
  ImageReplacement r;
  r.path = path;
  r.kind = kind;
  r.gif_bytes = gif_bytes;
  char buf[256];
  switch (kind) {
    case ImageKind::kSpacer:
      // Invisible layout images: replaced by padding/margin on the
      // containing element — effectively free.
      r.replaceable = true;
      std::snprintf(buf, sizeof buf, "style=\"padding:%upx %upx\"",
                    height / 2, width / 2);
      r.replacement_markup = buf;
      break;
    case ImageKind::kBullet:
      // Bullets/arrows exist as Unicode glyphs styled with CSS.
      r.replaceable = true;
      std::snprintf(buf, sizeof buf,
                    "<SPAN CLASS=bullet>&#8226;</SPAN>"
                    ".bullet{color:#c00;font-size:%upx}",
                    height);
      r.replacement_markup = buf;
      break;
    case ImageKind::kTextBanner:
      // Text-in-image: the Figure 1 pattern; style rule plus element.
      r.replaceable = true;
      std::snprintf(buf, sizeof buf,
                    "P.b%u{color:white;background:#FC0;"
                    "font:bold oblique %upx sans-serif;"
                    "padding:0.2em 10em 0.2em 1em}"
                    "<P CLASS=b%u> banner text",
                    width % 40, height, width % 40);
      r.replacement_markup = buf;
      break;
    case ImageKind::kLogo:
    case ImageKind::kPhoto:
      // Real graphics cannot be expressed as styled text.
      r.replaceable = false;
      break;
  }
  return r;
}

CssAnalysis analyze_replacements(const std::vector<ImageReplacement>& images) {
  CssAnalysis a;
  a.images = images;
  for (const ImageReplacement& r : images) {
    ++a.total_images;
    a.gif_bytes_total += r.gif_bytes;
    if (r.replaceable) {
      ++a.replaceable_images;
      a.gif_bytes_replaceable += r.gif_bytes;
      a.css_bytes += r.replacement_bytes();
      ++a.requests_saved;
    }
  }
  return a;
}

}  // namespace hsim::content
