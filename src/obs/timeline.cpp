#include "obs/timeline.hpp"

#include <cstdio>

namespace hsim::obs {

std::string_view to_string(TlKind k) {
  switch (k) {
    case TlKind::kStateChange: return "state";
    case TlKind::kSegSent: return "seg-sent";
    case TlKind::kSegRecvd: return "seg-recvd";
    case TlKind::kCwndChange: return "cwnd";
    case TlKind::kRtoFire: return "rto-fire";
    case TlKind::kFastRetransmit: return "fast-rexmit";
    case TlKind::kDelayedAck: return "delayed-ack";
    case TlKind::kNagleHold: return "nagle-hold";
    case TlKind::kRstSent: return "rst-sent";
    case TlKind::kRstRecvd: return "rst-recvd";
    case TlKind::kNote: return "note";
  }
  return "?";
}

ConnTimeline::ConnTimeline(std::string label, std::size_t capacity)
    : label_(std::move(label)), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void ConnTimeline::record(sim::Time time, TlKind kind, std::uint8_t flags,
                          std::uint64_t a, std::uint64_t b) {
  ring_[head_] = TlEvent{time, kind, flags, a, b};
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++recorded_;
}

std::vector<TlEvent> ConnTimeline::events() const {
  std::vector<TlEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string ConnTimeline::dump() const {
  std::string out = "timeline " + label_ + "\n";
  if (dropped() > 0) {
    char hdr[64];
    std::snprintf(hdr, sizeof hdr, "  (%llu earlier events dropped)\n",
                  static_cast<unsigned long long>(dropped()));
    out += hdr;
  }
  char line[160];
  for (const TlEvent& e : events()) {
    std::snprintf(line, sizeof line,
                  "  %10.6f  %-12s flags=%02x a=%llu b=%llu\n",
                  sim::to_seconds(e.time), std::string(to_string(e.kind)).c_str(),
                  e.flags, static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += line;
  }
  return out;
}

}  // namespace hsim::obs
