// Observability: a zero-overhead-when-disabled metrics registry.
//
// The paper's whole argument rests on wire-level accounting (packets, bytes,
// header overhead, time per phase); the registry makes those numbers
// first-class named metrics instead of ad-hoc tallies inside each bench.
//
// Overhead contract:
//   - No registry installed (the default): every instrumentation site in the
//     tcp/net/server/client/proxy layers holds a null handle and performs a
//     single predictable-not-taken branch. No allocation, no lookup, no
//     atomic — the simulator is single-threaded per EventQueue, and so is
//     the registry.
//   - Registry installed: handles are resolved ONCE (at component
//     construction) via a name lookup; per-event recording is a pointer
//     dereference plus an integer add.
//
// Installation is scoped: harness::run_once / run_workload install a fresh
// Registry for the duration of one simulated run, so components constructed
// inside the run bind to it and two same-seed runs produce identical
// registries (asserted by metrics_property_test).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace hsim::obs {

class ConnTimeline;

// ---------------------------------------------------------------------------
// Metric kinds
// ---------------------------------------------------------------------------

/// Monotonically increasing 64-bit count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void merge_from(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous signed level with a high-water mark (peak).
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    if (v > peak_) peak_ = v;
  }
  void add(std::int64_t d) { set(value_ + d); }
  void sub(std::int64_t d) { value_ -= d; }
  std::int64_t value() const { return value_; }
  std::int64_t peak() const { return peak_; }
  /// Merge keeps the sum of levels and the max of peaks — the right shape for
  /// aggregating per-shard depth gauges.
  void merge_from(const Gauge& other) {
    value_ += other.value_;
    if (other.peak_ > peak_) peak_ = other.peak_;
  }

 private:
  std::int64_t value_ = 0;
  std::int64_t peak_ = 0;
};

/// Log-linear histogram of non-negative 64-bit samples.
///
// Values 0..7 are exact; above that each power of two is split into 4
// sub-buckets, so any quantile is off by at most one sub-bucket width (no
// more than 1/4 of the value) — plenty for latency distributions
// (p50/p95/p99) while staying a fixed 256-slot array with O(1) observe.
class Histogram {
 public:
  void observe(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Quantile q in [0, 1]: the upper edge of the bucket holding the sample of
  /// rank ceil(q * count), clamped to [min, max]. Monotone in q by
  /// construction (metrics_property_test asserts the invariants).
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p95() const { return quantile(0.95); }
  std::uint64_t p99() const { return quantile(0.99); }

  void merge_from(const Histogram& other);

  static constexpr std::size_t kBuckets = 256;
  static std::size_t bucket_of(std::uint64_t v);
  /// Inclusive upper edge of a bucket (the representative quantile() returns).
  static std::uint64_t bucket_upper(std::size_t bucket);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Plain-value copy of a registry, safe to carry in result structs after the
/// run's registry is gone.
struct HistogramSnapshot {
  std::uint64_t count = 0, sum = 0, min = 0, max = 0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  double mean = 0.0;
};

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, std::int64_t> gauge_peaks;
  std::map<std::string, HistogramSnapshot> histograms;

  std::uint64_t counter(std::string_view name, std::uint64_t fallback = 0) const;
  std::int64_t gauge(std::string_view name, std::int64_t fallback = 0) const;
  const HistogramSnapshot* histogram(std::string_view name) const;

  /// Deterministic text rendering (sorted by name), one metric per line.
  std::string dump_text() const;
};

/// Named metrics for one simulated run. Metric objects have stable addresses
/// for the registry's lifetime (std::map nodes), so components cache raw
/// pointers at construction.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::uint64_t counter_value(std::string_view name,
                              std::uint64_t fallback = 0) const;
  std::int64_t gauge_value(std::string_view name,
                           std::int64_t fallback = 0) const;

  /// Shard aggregation: fold `other` into this registry (counters add,
  /// gauges add levels / max peaks, histograms add buckets). Associative and
  /// commutative — metrics_property_test asserts it.
  void merge_from(const Registry& other);

  Snapshot snapshot() const;
  std::string dump_text() const { return snapshot().dump_text(); }

  // ---- Per-connection TCP timelines --------------------------------------
  /// Off by default; when enabled, tcp::Connection allocates an event ring
  /// per connection. `capacity` is events retained per connection (ring).
  void enable_timelines(std::size_t capacity = 512);
  bool timelines_enabled() const { return timelines_enabled_; }
  ConnTimeline* make_timeline(std::string label);
  const std::vector<std::unique_ptr<ConnTimeline>>& timelines() const {
    return timelines_;
  }
  /// First timeline whose label contains `needle`, or nullptr.
  const ConnTimeline* find_timeline(std::string_view needle) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  bool timelines_enabled_ = false;
  std::size_t timeline_capacity_ = 512;
  std::vector<std::unique_ptr<ConnTimeline>> timelines_;
};

/// The currently installed registry, or nullptr (metrics disabled).
Registry* registry();
void set_registry(Registry* r);

/// RAII install/restore; harness runners use this so nested scopes behave.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* r) : prev_(registry()) { set_registry(r); }
  ~ScopedRegistry() { set_registry(prev_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

// ---------------------------------------------------------------------------
// Null-safe handles: what instrumented components hold.
// ---------------------------------------------------------------------------

struct CounterHandle {
  Counter* c = nullptr;
  void inc(std::uint64_t n = 1) const {
    if (c != nullptr) c->add(n);
  }
};

struct GaugeHandle {
  Gauge* g = nullptr;
  void set(std::int64_t v) const {
    if (g != nullptr) g->set(v);
  }
  void add(std::int64_t d) const {
    if (g != nullptr) g->add(d);
  }
  void sub(std::int64_t d) const {
    if (g != nullptr) g->sub(d);
  }
};

struct HistogramHandle {
  Histogram* h = nullptr;
  void observe(std::uint64_t v) const {
    if (h != nullptr) h->observe(v);
  }
};

/// Resolve handles against the installed registry (null handles when none).
CounterHandle counter_handle(std::string_view name);
GaugeHandle gauge_handle(std::string_view name);
HistogramHandle histogram_handle(std::string_view name);

/// Consumer of a finished run's metrics. harness::run_once / run_workload
/// install a fresh Registry per run and hand it to the sink before teardown,
/// so callers can aggregate histograms across runs or shards.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void consume(const Registry& registry) = 0;
};

}  // namespace hsim::obs
