#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/timeline.hpp"

namespace hsim::obs {

namespace {
/// Installed registry, one per thread. Single-threaded runs behave exactly
/// as with a plain global; the sharded engine's workers each install their
/// shard's registry before running a slice (sim/shard.hpp), so concurrent
/// shards count into disjoint registries with no locks and no contention —
/// the harness merges them deterministically after the run.
thread_local Registry* g_registry = nullptr;
}  // namespace

Registry* registry() { return g_registry; }
void set_registry(Registry* r) { g_registry = r; }

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::bucket_of(std::uint64_t v) {
  if (v < 8) return static_cast<std::size_t>(v);
  const int msb = std::bit_width(v) - 1;  // >= 3
  const std::uint64_t sub = (v >> (msb - 2)) & 3;  // two bits below the msb
  return 8 + static_cast<std::size_t>(msb - 3) * 4 + static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_upper(std::size_t bucket) {
  if (bucket < 8) return bucket;
  const int msb = static_cast<int>((bucket - 8) / 4) + 3;
  const std::uint64_t sub = (bucket - 8) % 4;
  const std::uint64_t lower = (std::uint64_t{1} << msb) | (sub << (msb - 2));
  return lower + (std::uint64_t{1} << (msb - 2)) - 1;
}

void Histogram::observe(std::uint64_t v) {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      return std::clamp(bucket_upper(b), min(), max_);
    }
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Registry() = default;
Registry::~Registry() = default;

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

std::uint64_t Registry::counter_value(std::string_view name,
                                      std::uint64_t fallback) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? fallback : it->second.value();
}

std::int64_t Registry::gauge_value(std::string_view name,
                                   std::int64_t fallback) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? fallback : it->second.value();
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).merge_from(c);
  for (const auto& [name, g] : other.gauges_) gauge(name).merge_from(g);
  for (const auto& [name, h] : other.histograms_) histogram(name).merge_from(h);
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = g.value();
    s.gauge_peaks[name] = g.peak();
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot& hs = s.histograms[name];
    hs.count = h.count();
    hs.sum = h.sum();
    hs.min = h.min();
    hs.max = h.max();
    hs.p50 = h.p50();
    hs.p95 = h.p95();
    hs.p99 = h.p99();
    hs.mean = h.mean();
  }
  return s;
}

void Registry::enable_timelines(std::size_t capacity) {
  timelines_enabled_ = true;
  timeline_capacity_ = capacity;
}

ConnTimeline* Registry::make_timeline(std::string label) {
  if (!timelines_enabled_) return nullptr;
  timelines_.push_back(
      std::make_unique<ConnTimeline>(std::move(label), timeline_capacity_));
  return timelines_.back().get();
}

const ConnTimeline* Registry::find_timeline(std::string_view needle) const {
  for (const auto& tl : timelines_) {
    if (tl->label().find(needle) != std::string::npos) return tl.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

std::uint64_t Snapshot::counter(std::string_view name,
                                std::uint64_t fallback) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

std::int64_t Snapshot::gauge(std::string_view name,
                             std::int64_t fallback) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? fallback : it->second;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  auto it = histograms.find(std::string(name));
  return it == histograms.end() ? nullptr : &it->second;
}

std::string Snapshot::dump_text() const {
  std::string out;
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof line, "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof line, "gauge %s %lld peak=%lld\n", name.c_str(),
                  static_cast<long long>(v),
                  static_cast<long long>(gauge_peaks.at(name)));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof line,
                  "histogram %s count=%llu sum=%llu min=%llu max=%llu "
                  "p50=%llu p95=%llu p99=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max),
                  static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p95),
                  static_cast<unsigned long long>(h.p99));
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

CounterHandle counter_handle(std::string_view name) {
  Registry* r = registry();
  return CounterHandle{r == nullptr ? nullptr : &r->counter(name)};
}

GaugeHandle gauge_handle(std::string_view name) {
  Registry* r = registry();
  return GaugeHandle{r == nullptr ? nullptr : &r->gauge(name)};
}

HistogramHandle histogram_handle(std::string_view name) {
  Registry* r = registry();
  return HistogramHandle{r == nullptr ? nullptr : &r->histogram(name)};
}

}  // namespace hsim::obs
