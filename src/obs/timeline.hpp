// Per-connection event timelines: a fixed-capacity ring of annotated events
// (state transitions, cwnd/ssthresh changes, segments sent/received, timer
// fires) with simulated timestamps.
//
// The obs layer stays protocol-agnostic: events carry a kind tag plus three
// numeric arguments whose meaning is defined by the recorder (tcp::Connection
// documents its encoding next to tcp::format_timeline, which renders the
// human-readable annotated trace). Timelines exist only while a Registry with
// enable_timelines() is installed; otherwise connections hold a null pointer
// and recording is a no-op branch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hsim::obs {

enum class TlKind : std::uint8_t {
  kStateChange,     // a = old state, b = new state
  kSegSent,         // flags = TCP flags, a = seq, b = payload bytes
  kSegRecvd,        // flags = TCP flags, a = seq, b = payload bytes
  kCwndChange,      // flags = tcp::CaState, a = cwnd bytes, b = ssthresh bytes
  kRtoFire,         // a = backed-off RTO (ns), b = consecutive fires
  kFastRetransmit,  // a = seq retransmitted
  kDelayedAck,      // delayed-ACK timer fired a pure ACK
  kNagleHold,       // a = withheld segment length
  kRstSent,         // a = seq; flags: 1 = failure-path RST (give-up)
  kRstRecvd,        // connection torn down by an incoming RST
  kNote,            // free-form marker; a/b recorder-defined
};

std::string_view to_string(TlKind k);

struct TlEvent {
  sim::Time time = 0;
  TlKind kind = TlKind::kNote;
  std::uint8_t flags = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class ConnTimeline {
 public:
  ConnTimeline(std::string label, std::size_t capacity);

  void record(sim::Time time, TlKind kind, std::uint8_t flags = 0,
              std::uint64_t a = 0, std::uint64_t b = 0);

  const std::string& label() const { return label_; }
  /// Events in chronological order (oldest retained first).
  std::vector<TlEvent> events() const;
  /// Total events ever recorded (>= events().size() once the ring wraps).
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(size_);
  }

  /// Generic rendering: timestamp, kind, numeric args. Protocol layers
  /// provide richer annotators (see tcp::format_timeline).
  std::string dump() const;

 private:
  std::string label_;
  std::vector<TlEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;  // events currently retained
  std::uint64_t recorded_ = 0;
};

}  // namespace hsim::obs
