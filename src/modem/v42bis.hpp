// V.42bis-style modem data compression (BTLZ), modelled for the PPP link.
//
// V.42bis is an LZW dictionary compressor running inside the modem pair with
// a small dictionary (default 2048 codewords, max 11-bit codes) and a
// transparent mode that stops expansion on incompressible data. The paper's
// §8.2.1 shows deflate beating it decisively on HTML; this model reproduces
// that gap with a real streaming LZW over the byte stream crossing the link.
//
// Used two ways:
//   - as a Link payload sizer: each packet's payload is run through the
//     shared dictionary and its on-the-wire size becomes the LZW output size
//     (headers are never compressed);
//   - standalone, to measure steady-state compression ratios on documents.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>

#include "net/link.hpp"

namespace hsim::modem {

class V42bis {
 public:
  explicit V42bis(unsigned dictionary_size = 2048);

  /// Feeds payload bytes through the compressor and returns the number of
  /// bytes emitted on the physical medium for this chunk (compressed size,
  /// or payload size + 1 escape byte when transparent mode wins).
  std::size_t process(std::span<const std::uint8_t> payload);

  std::uint64_t total_in() const { return total_in_; }
  std::uint64_t total_out() const { return total_out_; }
  double ratio() const {
    return total_in_ == 0 ? 1.0
                          : static_cast<double>(total_out_) /
                                static_cast<double>(total_in_);
  }
  void reset();

 private:
  std::size_t lzw_bits(std::span<const std::uint8_t> payload);

  unsigned dictionary_size_;
  std::map<std::uint32_t, std::uint32_t> dict_;  // (prefix<<8|byte) -> code
  std::uint32_t next_code_ = 259;  // 0-255 roots + 3 control codes
  unsigned code_width_ = 9;
  std::uint32_t current_ = UINT32_MAX;  // cross-packet match state
  std::uint64_t total_in_ = 0;
  std::uint64_t total_out_ = 0;
};

/// Wraps a shared compressor state as a Link payload sizer. Each direction
/// of a modem link owns its own dictionary (as the two modems do).
net::Link::PayloadSizer make_modem_sizer(std::shared_ptr<V42bis> state);

/// One-shot convenience: steady-state compressed size of a document.
std::size_t v42bis_compressed_size(std::span<const std::uint8_t> data);

}  // namespace hsim::modem
