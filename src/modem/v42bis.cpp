#include "modem/v42bis.hpp"

#include <algorithm>

namespace hsim::modem {

V42bis::V42bis(unsigned dictionary_size)
    : dictionary_size_(std::max(512u, dictionary_size)) {}

void V42bis::reset() {
  dict_.clear();
  next_code_ = 259;
  code_width_ = 9;
  current_ = UINT32_MAX;
  total_in_ = 0;
  total_out_ = 0;
}

std::size_t V42bis::lzw_bits(std::span<const std::uint8_t> payload) {
  std::size_t bits = 0;
  for (std::uint8_t byte : payload) {
    if (current_ == UINT32_MAX) {
      current_ = byte;
      continue;
    }
    const std::uint32_t key = (current_ << 8) | byte;
    if (const auto it = dict_.find(key); it != dict_.end()) {
      current_ = it->second;
      continue;
    }
    bits += code_width_;  // emit `current_`
    if (next_code_ < dictionary_size_) {
      dict_[key] = next_code_++;
      if (next_code_ > (1u << code_width_) && code_width_ < 11) {
        ++code_width_;
      }
    } else {
      // Dictionary full: V.42bis recycles entries; modelled as a flush.
      dict_.clear();
      next_code_ = 259;
      code_width_ = 9;
    }
    current_ = byte;
  }
  return bits;
}

std::size_t V42bis::process(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return 0;
  total_in_ += payload.size();
  const std::size_t bits = lzw_bits(payload);
  // The match in progress (current_) spans into the next packet; charge the
  // portion emitted so far plus a small framing cost per chunk.
  std::size_t compressed = (bits + 7) / 8 + 1;
  // Transparent mode: never transmit more than payload + 1 escape byte.
  compressed = std::min(compressed, payload.size() + 1);
  total_out_ += compressed;
  return compressed;
}

net::Link::PayloadSizer make_modem_sizer(std::shared_ptr<V42bis> state) {
  return [state](const net::Packet& packet) {
    return state->process(
        std::span<const std::uint8_t>(packet.payload.data(),
                                      packet.payload.size()));
  };
}

std::size_t v42bis_compressed_size(std::span<const std::uint8_t> data) {
  V42bis v;
  return v.process(data);
}

}  // namespace hsim::modem
