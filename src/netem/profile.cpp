#include "netem/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/random.hpp"

namespace hsim::netem {

namespace {

/// Boundary-walk safety valve. Progress is guaranteed (every slice is at
/// least 1 ns and multi-segment rates are positive), so this is only ever
/// reached by a pathological profile such as a 1 ns loop.
constexpr int kMaxWalkSlices = 1'000'000;

}  // namespace

Profile::Profile(std::vector<Segment> segments, sim::Time period)
    : segments_(std::move(segments)), period_(period) {
  if (segments_.empty()) {
    throw std::invalid_argument("netem::Profile: no segments");
  }
  if (segments_.front().start != 0) {
    throw std::invalid_argument(
        "netem::Profile: first segment must start at 0");
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    if (i > 0 && s.start <= segments_[i - 1].start) {
      throw std::invalid_argument(
          "netem::Profile: segment starts must be strictly increasing");
    }
    if (s.extra_latency < 0) {
      throw std::invalid_argument(
          "netem::Profile: negative extra_latency breaks the lookahead "
          "lower bound");
    }
    if (segments_.size() > 1 && s.bandwidth_bps <= 0) {
      throw std::invalid_argument(
          "netem::Profile: multi-segment timelines need positive rates");
    }
  }
  if (period_ < 0 ||
      (period_ > 0 && period_ <= segments_.back().start)) {
    throw std::invalid_argument(
        "netem::Profile: loop period must exceed the last segment start");
  }
  min_extra_latency_ = segments_.front().extra_latency;
  for (const Segment& s : segments_) {
    min_extra_latency_ = std::min(min_extra_latency_, s.extra_latency);
  }
}

Profile Profile::constant(std::int64_t bandwidth_bps) {
  return Profile({Segment{0, bandwidth_bps, 0}}, 0);
}

std::size_t Profile::segment_index(sim::Time at) const {
  sim::Time rel = at;
  if (period_ > 0) {
    rel = at % period_;
    if (rel < 0) rel += period_;  // defensive; sim time is non-negative
  }
  // First segment whose start is past rel, minus one.
  std::size_t lo = 0, hi = segments_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (segments_[mid].start <= rel) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

sim::Time Profile::transmit_duration(sim::Time at, std::size_t wire_bytes) const {
  const double bits = static_cast<double>(wire_bytes) * 8.0;
  // Constant-rate fast path: the exact arithmetic of the legacy static link
  // (net::Link::serialisation_time), so a flat profile is byte-identical.
  if (constant_rate()) {
    const std::int64_t rate = segments_.front().bandwidth_bps;
    if (rate <= 0) return 0;
    return sim::from_seconds(bits / static_cast<double>(rate));
  }

  // Walk segment boundaries, draining bits at each segment's rate. The
  // transmission finishes inside the first segment whose capacity covers the
  // remainder, so bytes in flight are conserved across every boundary.
  double remaining = bits;
  sim::Time elapsed = 0;
  for (int guard = 0; guard < kMaxWalkSlices; ++guard) {
    const sim::Time abs = at + elapsed;
    const std::size_t idx = segment_index(abs);
    const std::int64_t rate = segments_[idx].bandwidth_bps;
    if (rate <= 0) return elapsed;  // infinite rate: rest goes out instantly
    const sim::Time need =
        sim::from_seconds(remaining / static_cast<double>(rate));
    // Where (relative to the timeline) does this segment end?
    sim::Time end_rel;
    if (idx + 1 < segments_.size()) {
      end_rel = segments_[idx + 1].start;
    } else if (period_ > 0) {
      end_rel = period_;
    } else {
      return elapsed + need;  // last segment holds forever
    }
    sim::Time rel = abs;
    if (period_ > 0) rel = abs % period_;
    const sim::Time slice = end_rel - rel;
    if (need <= slice) return elapsed + need;
    remaining -= static_cast<double>(rate) * sim::to_seconds(slice);
    elapsed += slice;
    if (remaining <= 0.0) return elapsed;
  }
  return elapsed;
}

// ---- Named synthetic profiles ---------------------------------------------

namespace {

struct WalkSpec {
  double floor_bps = 0;
  double ceil_bps = 0;
  double step = 0.0;          // max fractional move per segment
  double fade_chance = 0.0;   // chance a segment collapses toward the floor
  sim::Time extra_lo = 0;     // extra latency when the rate is at the ceiling
  sim::Time extra_hi = 0;     // extra latency when the rate is at the floor
};

/// Bounded multiplicative random walk over fixed-length segments. Extra
/// latency is interpolated against the rate (slow radio conditions also mean
/// longer scheduling delay), so fades produce the latency spikes seen in
/// drive traces.
std::vector<Segment> random_walk(sim::Rng& rng, const WalkSpec& w,
                                 sim::Time seg_len, int count,
                                 double start_frac) {
  std::vector<Segment> out;
  out.reserve(static_cast<std::size_t>(count));
  double rate = w.floor_bps + start_frac * (w.ceil_bps - w.floor_bps);
  for (int i = 0; i < count; ++i) {
    if (w.fade_chance > 0.0 && rng.chance(w.fade_chance)) {
      rate = w.floor_bps * rng.uniform_real(1.0, 1.6);
    } else {
      rate *= rng.uniform_real(1.0 - w.step, 1.0 + w.step);
    }
    rate = std::min(w.ceil_bps, std::max(w.floor_bps, rate));
    const double frac = (rate - w.floor_bps) / (w.ceil_bps - w.floor_bps);
    sim::Time extra =
        w.extra_hi - static_cast<sim::Time>(
                         frac * static_cast<double>(w.extra_hi - w.extra_lo));
    // Whole microseconds: the trace-file format's resolution, so the
    // checked-in profiles/<name>.netem files round-trip exactly.
    extra -= extra % 1000;
    out.push_back(Segment{seg_len * i, static_cast<std::int64_t>(rate), extra});
  }
  return out;
}

}  // namespace

std::vector<std::string> named_profile_names() {
  return {"3g-drive", "4g-walk", "lte-stationary", "wifi-congested"};
}

std::optional<PathProfile> named_profile(std::string_view name) {
  const sim::Time ms = sim::milliseconds(1);
  if (name == "3g-drive") {
    // UMTS/HSPA while driving: 0.3-3.5 Mbit down with deep fades, ~4x slower
    // uplink, high scheduling latency, slow radio promotion and a deep RNC
    // buffer (the canonical bufferbloat case).
    PathProfile p;
    p.name = "3g-drive";
    sim::Rng down_rng(0x3D41);
    sim::Rng up_rng(0x3D42);
    WalkSpec down{300'000, 3'500'000, 0.35, 0.08, 70 * ms, 200 * ms};
    WalkSpec up{96'000, 768'000, 0.30, 0.08, 90 * ms, 240 * ms};
    p.down = Profile(random_walk(down_rng, down, 1000 * ms, 60, 0.6),
                     sim::seconds(60));
    p.up = Profile(random_walk(up_rng, up, 1000 * ms, 60, 0.5),
                   sim::seconds(60));
    p.radio = {true, 600 * ms, 3000 * ms};
    p.queue_limit_packets = 256;
    return p;
  }
  if (name == "4g-walk") {
    // LTE on foot: 4-25 Mbit down, brisk variation, moderate latency, fast
    // promotion from RRC idle with a long inactivity timer.
    PathProfile p;
    p.name = "4g-walk";
    sim::Rng down_rng(0x4641);
    sim::Rng up_rng(0x4642);
    WalkSpec down{4'000'000, 25'000'000, 0.25, 0.03, 25 * ms, 70 * ms};
    WalkSpec up{1'500'000, 8'000'000, 0.25, 0.03, 30 * ms, 80 * ms};
    p.down = Profile(random_walk(down_rng, down, 750 * ms, 60, 0.7),
                     sim::milliseconds(45'000));
    p.up = Profile(random_walk(up_rng, up, 750 * ms, 60, 0.6),
                   sim::milliseconds(45'000));
    p.radio = {true, 260 * ms, 10'000 * ms};
    p.queue_limit_packets = 512;
    return p;
  }
  if (name == "lte-stationary") {
    // LTE at a desk: stable 12-18 Mbit down, mild variation, low latency.
    PathProfile p;
    p.name = "lte-stationary";
    sim::Rng down_rng(0x17E1);
    sim::Rng up_rng(0x17E2);
    WalkSpec down{12'000'000, 18'000'000, 0.08, 0.0, 22 * ms, 40 * ms};
    WalkSpec up{5'000'000, 8'000'000, 0.08, 0.0, 26 * ms, 45 * ms};
    p.down = Profile(random_walk(down_rng, down, 3000 * ms, 10, 0.5),
                     sim::seconds(30));
    p.up = Profile(random_walk(up_rng, up, 3000 * ms, 10, 0.5),
                   sim::seconds(30));
    p.radio = {true, 100 * ms, 10'000 * ms};
    p.queue_limit_packets = 384;
    return p;
  }
  if (name == "wifi-congested") {
    // Shared 2.4 GHz apartment Wi-Fi: 0.5-8 Mbit oscillating with contention
    // collapses, no radio machine, and a very deep CPE buffer.
    PathProfile p;
    p.name = "wifi-congested";
    sim::Rng down_rng(0x81F1);
    sim::Rng up_rng(0x81F2);
    WalkSpec down{500'000, 8'000'000, 0.45, 0.12, 5 * ms, 60 * ms};
    WalkSpec up{500'000, 6'000'000, 0.45, 0.12, 5 * ms, 60 * ms};
    p.down = Profile(random_walk(down_rng, down, 400 * ms, 50, 0.8),
                     sim::milliseconds(20'000));
    p.up = Profile(random_walk(up_rng, up, 400 * ms, 50, 0.7),
                   sim::milliseconds(20'000));
    p.queue_limit_packets = 600;
    return p;
  }
  return std::nullopt;
}

// ---- Trace file format ----------------------------------------------------

namespace {

std::string format_ms(sim::Time t) {
  // Millisecond rendering at microsecond resolution, trailing zeros trimmed,
  // so whole-microsecond times round-trip exactly.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t) / 1e6);
  std::string s(buf);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

bool parse_ms(const std::string& tok, sim::Time* out) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || !std::isfinite(v)) return false;
  *out = static_cast<sim::Time>(std::llround(v * 1e6));  // ms -> ns
  return true;
}

bool parse_i64(const std::string& tok, std::int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool fail(std::string* error, int line, const std::string& what) {
  if (error != nullptr) {
    *error = "netem profile line " + std::to_string(line) + ": " + what;
  }
  return false;
}

}  // namespace

bool parse_profile(std::string_view text, PathProfile* out,
                   std::string* error) {
  PathProfile p;
  std::vector<Segment> down, up;
  sim::Time period = 0;
  bool saw_profile = false;

  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank / comment-only

    std::vector<std::string> toks;
    for (std::string t; line >> t;) toks.push_back(t);

    if (keyword == "profile") {
      if (saw_profile) return fail(error, line_no, "duplicate profile line");
      if (toks.size() != 1) return fail(error, line_no, "profile needs a name");
      p.name = toks[0];
      saw_profile = true;
      continue;
    }
    if (!saw_profile) {
      return fail(error, line_no, "first directive must be 'profile <name>'");
    }
    if (keyword == "radio") {
      if (toks.size() != 2) {
        return fail(error, line_no, "radio needs <promotion_ms> <idle_ms>");
      }
      sim::Time promo = 0, idle = 0;
      if (!parse_ms(toks[0], &promo) || !parse_ms(toks[1], &idle) ||
          promo < 0 || idle < 0) {
        return fail(error, line_no, "bad radio timings");
      }
      p.radio = {true, promo, idle};
    } else if (keyword == "queue") {
      std::int64_t q = 0;
      if (toks.size() != 1 || !parse_i64(toks[0], &q) || q <= 0) {
        return fail(error, line_no, "queue needs a positive packet count");
      }
      p.queue_limit_packets = static_cast<std::size_t>(q);
    } else if (keyword == "loop") {
      if (toks.size() != 1 || !parse_ms(toks[0], &period) || period <= 0) {
        return fail(error, line_no, "loop needs a positive period in ms");
      }
    } else if (keyword == "down" || keyword == "up") {
      if (toks.size() != 3) {
        return fail(error, line_no,
                    keyword + " needs <start_ms> <rate_bps> <extra_ms>");
      }
      Segment s;
      if (!parse_ms(toks[0], &s.start) || s.start < 0) {
        return fail(error, line_no, "bad segment start");
      }
      if (!parse_i64(toks[1], &s.bandwidth_bps) || s.bandwidth_bps <= 0) {
        return fail(error, line_no, "segment rate must be a positive bps");
      }
      if (!parse_ms(toks[2], &s.extra_latency) || s.extra_latency < 0) {
        return fail(error, line_no,
                    "segment extra latency must be >= 0 (lookahead rule)");
      }
      (keyword == "down" ? down : up).push_back(s);
    } else {
      return fail(error, line_no, "unknown directive '" + keyword + "'");
    }
  }

  if (!saw_profile) return fail(error, 0, "missing 'profile <name>' line");
  if (down.empty()) return fail(error, 0, "at least one 'down' segment required");
  try {
    p.down = Profile(down, period);
    p.up = up.empty() ? p.down : Profile(up, period);
  } catch (const std::invalid_argument& e) {
    return fail(error, 0, e.what());
  }
  *out = std::move(p);
  return true;
}

std::string profile_to_text(const PathProfile& profile) {
  std::string out;
  out += "# hsim netem profile (see src/netem/profile.hpp for the format)\n";
  out += "profile " + profile.name + "\n";
  if (profile.radio.enabled) {
    out += "radio " + format_ms(profile.radio.promotion_delay) + " " +
           format_ms(profile.radio.inactivity_timeout) + "\n";
  }
  if (profile.queue_limit_packets > 0) {
    out += "queue " + std::to_string(profile.queue_limit_packets) + "\n";
  }
  if (profile.down.period() > 0) {
    out += "loop " + format_ms(profile.down.period()) + "\n";
  }
  const auto emit = [&out](const char* dir, const Profile& prof) {
    for (const Segment& s : prof.segments()) {
      out += std::string(dir) + " " + format_ms(s.start) + " " +
             std::to_string(s.bandwidth_bps) + " " +
             format_ms(s.extra_latency) + "\n";
    }
  };
  emit("down", profile.down);
  if (!(profile.up == profile.down)) emit("up", profile.up);
  return out;
}

bool load_profile_file(const std::string& path, PathProfile* out,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open profile file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_profile(buf.str(), out, error);
}

}  // namespace hsim::netem
