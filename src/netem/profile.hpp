// Trace-driven time-varying link profiles (netem).
//
// The paper's three networks (LAN/WAN/PPP) are static point configurations.
// The regimes where the pipelining-vs-multiplexing verdicts actually flip are
// time-varying: fluctuating cellular bandwidth, radio-wakeup latency spikes,
// deep bufferbloat queues and asymmetric up/down paths. This subsystem models
// them as data, not code:
//
//   - a Profile is a timeline of piecewise-constant segments, each holding a
//     bandwidth and an extra one-way latency. The timeline either repeats
//     with a loop period or holds its last segment forever. Serialisation of
//     a packet that straddles segment boundaries integrates the rate across
//     them, so bytes in flight are conserved at every boundary;
//   - a RadioConfig is the cellular radio state machine
//     (IDLE -> PROMOTING -> ACTIVE): the first packet after an idle period is
//     charged a promotion delay, and the radio demotes to IDLE after a
//     configurable inactivity timeout;
//   - a PathProfile composes one Profile per direction (asymmetric up/down),
//     the radio machine (charged on the uplink - the device side), and an
//     optional deep-buffer (bufferbloat) queue override.
//
// Profiles come from a simple line-based trace file format (profiles/*.netem,
// parse_profile below) or from the seeded synthetic generators behind
// named_profile() ("3g-drive", "4g-walk", "lte-stationary",
// "wifi-congested"). A constant single-segment profile is the identity: a
// link driving one is byte-exact with the legacy static link.
//
// Lookahead rule (sharded engine): a profile may only ADD latency. Every
// segment's extra_latency must be >= 0 (validated), so
//   min_remote_latency = jittered propagation lower bound
//                        + min over segments of extra_latency
// remains a valid delivery-time lower bound no matter where in the timeline
// a packet lands; serialisation and radio wakeup only push delivery later.
//
// This module depends on sim only - net::LinkConfig holds a
// shared_ptr<const LinkDynamics> and net/harness own the wiring.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace hsim::netem {

/// One piecewise-constant stretch of the timeline. `start` is the offset from
/// the profile epoch (simulation t=0); the segment runs until the next
/// segment's start (or the loop period / forever for the last one).
struct Segment {
  sim::Time start = 0;
  /// Bits per second; 0 means infinite (no serialisation delay). Only a
  /// single-segment (constant) profile may carry rate 0 - multi-segment
  /// timelines must keep every rate positive so the boundary walk always
  /// makes progress.
  std::int64_t bandwidth_bps = 0;
  /// Extra one-way latency added on top of the link's (jittered) propagation
  /// delay while this segment is current. Must be >= 0 (lookahead rule).
  sim::Time extra_latency = 0;

  bool operator==(const Segment&) const = default;
};

/// A single direction's bandwidth/latency timeline.
class Profile {
 public:
  /// Default: constant infinite bandwidth, no extra latency (identity).
  Profile() = default;

  /// `period` > 0 makes the timeline repeat every `period`; 0 holds the last
  /// segment forever. Throws std::invalid_argument on a malformed timeline
  /// (empty, first start != 0, non-increasing starts, negative extra
  /// latency, non-positive rate in a multi-segment profile, period not past
  /// the last segment start).
  explicit Profile(std::vector<Segment> segments, sim::Time period = 0);

  /// The identity profile for a static link of the given rate.
  static Profile constant(std::int64_t bandwidth_bps);

  /// True for a single never-looping segment - the byte-exact identity case.
  bool constant_rate() const {
    return segments_.size() == 1 && period_ == 0;
  }

  std::int64_t bandwidth_at(sim::Time at) const {
    return segments_[segment_index(at)].bandwidth_bps;
  }
  sim::Time extra_latency_at(sim::Time at) const {
    return segments_[segment_index(at)].extra_latency;
  }

  /// Time to clock `wire_bytes` onto the wire starting at absolute time
  /// `at`, integrating the rate across every segment boundary the
  /// transmission straddles. The constant-rate path reproduces the legacy
  /// static-link arithmetic bit for bit.
  sim::Time transmit_duration(sim::Time at, std::size_t wire_bytes) const;

  /// Lower bound on extra_latency over the whole timeline (lookahead rule).
  sim::Time min_extra_latency() const { return min_extra_latency_; }

  const std::vector<Segment>& segments() const { return segments_; }
  sim::Time period() const { return period_; }

  bool operator==(const Profile&) const = default;

 private:
  std::size_t segment_index(sim::Time at) const;

  std::vector<Segment> segments_{Segment{}};
  sim::Time period_ = 0;
  sim::Time min_extra_latency_ = 0;
};

/// Cellular radio state machine, charged on the uplink (the device radio).
/// The link is the transmitter, so the machine lives there: a transmission
/// beginning after `inactivity_timeout` of radio silence pays
/// `promotion_delay` before its first bit (IDLE -> PROMOTING -> ACTIVE);
/// packets queued behind it ride the same promotion and pay nothing extra.
struct RadioConfig {
  bool enabled = false;
  sim::Time promotion_delay = 0;
  sim::Time inactivity_timeout = 0;

  bool operator==(const RadioConfig&) const = default;
};

/// Exported radio state for the netem.<label>.radio_state gauge.
enum class RadioState { kIdle = 0, kPromoting = 1, kActive = 2 };

/// What one net::Link consults per transmission. Immutable and shared: the
/// same dynamics object typically hangs off many per-client LinkConfigs.
struct LinkDynamics {
  Profile profile;
  RadioConfig radio;

  bool operator==(const LinkDynamics&) const = default;
};

/// A full duplex path description: per-direction timelines, the radio
/// machine, and an optional bufferbloat queue override.
struct PathProfile {
  std::string name;
  Profile down;  // server -> client
  Profile up;    // client -> server
  RadioConfig radio;
  /// When > 0, overrides queue_limit_packets on both directions (deep
  /// cellular/CPE buffers - the bufferbloat axis). 0 keeps the link's own.
  std::size_t queue_limit_packets = 0;

  bool operator==(const PathProfile&) const = default;
};

// ---- Named synthetic profiles ---------------------------------------------

/// Seeded synthetic generators for the checked-in profiles/ set:
/// "3g-drive", "4g-walk", "lte-stationary", "wifi-congested". Deterministic:
/// the same name always yields the same timeline, and the checked-in
/// profiles/<name>.netem files are pinned against these by test.
std::optional<PathProfile> named_profile(std::string_view name);
std::vector<std::string> named_profile_names();

// ---- Trace file format ----------------------------------------------------
//
// Line-based text, '#' starts a comment, blank lines ignored:
//
//   profile <name>                       # required, first directive
//   radio <promotion_ms> <idle_ms>       # optional radio machine
//   queue <packets>                      # optional deep-buffer override
//   loop <period_ms>                     # optional; > last segment start
//   down <start_ms> <rate_bps> <extra_ms>  # >= 1 required, first start 0,
//   down <start_ms> <rate_bps> <extra_ms>  # strictly increasing starts
//   up   <start_ms> <rate_bps> <extra_ms>  # optional; absent = symmetric
//
// Millisecond fields accept decimals down to 1 us resolution; rates are
// integer bits per second and must be > 0; extra latencies must be >= 0.

/// Parses the trace format. Returns false and fills `error` (line-numbered)
/// on malformed input; `out` is untouched on failure.
bool parse_profile(std::string_view text, PathProfile* out, std::string* error);

/// Canonical text rendering; parse_profile(profile_to_text(p)) == p for any
/// profile whose times are whole microseconds.
std::string profile_to_text(const PathProfile& profile);

/// Loads and parses a profile file. Returns false and fills `error` if the
/// file is unreadable or malformed.
bool load_profile_file(const std::string& path, PathProfile* out,
                       std::string* error);

}  // namespace hsim::netem
