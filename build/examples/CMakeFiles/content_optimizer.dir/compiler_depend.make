# Empty compiler generated dependencies file for content_optimizer.
# This may be replaced when dependencies are built.
