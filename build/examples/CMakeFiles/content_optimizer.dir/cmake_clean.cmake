file(REMOVE_RECURSE
  "CMakeFiles/content_optimizer.dir/content_optimizer.cpp.o"
  "CMakeFiles/content_optimizer.dir/content_optimizer.cpp.o.d"
  "content_optimizer"
  "content_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
