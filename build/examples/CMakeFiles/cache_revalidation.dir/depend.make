# Empty dependencies file for cache_revalidation.
# This may be replaced when dependencies are built.
