file(REMOVE_RECURSE
  "CMakeFiles/cache_revalidation.dir/cache_revalidation.cpp.o"
  "CMakeFiles/cache_revalidation.dir/cache_revalidation.cpp.o.d"
  "cache_revalidation"
  "cache_revalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_revalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
