# Empty compiler generated dependencies file for packet_trace_viewer.
# This may be replaced when dependencies are built.
