file(REMOVE_RECURSE
  "CMakeFiles/packet_trace_viewer.dir/packet_trace_viewer.cpp.o"
  "CMakeFiles/packet_trace_viewer.dir/packet_trace_viewer.cpp.o.d"
  "packet_trace_viewer"
  "packet_trace_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_trace_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
