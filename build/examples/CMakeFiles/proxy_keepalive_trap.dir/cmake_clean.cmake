file(REMOVE_RECURSE
  "CMakeFiles/proxy_keepalive_trap.dir/proxy_keepalive_trap.cpp.o"
  "CMakeFiles/proxy_keepalive_trap.dir/proxy_keepalive_trap.cpp.o.d"
  "proxy_keepalive_trap"
  "proxy_keepalive_trap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_keepalive_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
