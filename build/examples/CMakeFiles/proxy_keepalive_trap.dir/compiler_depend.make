# Empty compiler generated dependencies file for proxy_keepalive_trap.
# This may be replaced when dependencies are built.
