file(REMOVE_RECURSE
  "CMakeFiles/table04_jigsaw_lan.dir/table04_jigsaw_lan.cpp.o"
  "CMakeFiles/table04_jigsaw_lan.dir/table04_jigsaw_lan.cpp.o.d"
  "table04_jigsaw_lan"
  "table04_jigsaw_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_jigsaw_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
