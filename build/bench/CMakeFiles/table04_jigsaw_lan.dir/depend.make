# Empty dependencies file for table04_jigsaw_lan.
# This may be replaced when dependencies are built.
