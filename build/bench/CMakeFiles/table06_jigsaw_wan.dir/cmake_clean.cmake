file(REMOVE_RECURSE
  "CMakeFiles/table06_jigsaw_wan.dir/table06_jigsaw_wan.cpp.o"
  "CMakeFiles/table06_jigsaw_wan.dir/table06_jigsaw_wan.cpp.o.d"
  "table06_jigsaw_wan"
  "table06_jigsaw_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_jigsaw_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
