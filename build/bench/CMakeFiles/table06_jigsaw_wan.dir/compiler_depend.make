# Empty compiler generated dependencies file for table06_jigsaw_wan.
# This may be replaced when dependencies are built.
