# Empty compiler generated dependencies file for fig01_css_replacement.
# This may be replaced when dependencies are built.
