file(REMOVE_RECURSE
  "CMakeFiles/fig01_css_replacement.dir/fig01_css_replacement.cpp.o"
  "CMakeFiles/fig01_css_replacement.dir/fig01_css_replacement.cpp.o.d"
  "fig01_css_replacement"
  "fig01_css_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_css_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
