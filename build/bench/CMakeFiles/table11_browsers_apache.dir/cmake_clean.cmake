file(REMOVE_RECURSE
  "CMakeFiles/table11_browsers_apache.dir/table11_browsers_apache.cpp.o"
  "CMakeFiles/table11_browsers_apache.dir/table11_browsers_apache.cpp.o.d"
  "table11_browsers_apache"
  "table11_browsers_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_browsers_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
