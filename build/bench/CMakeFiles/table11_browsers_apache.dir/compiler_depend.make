# Empty compiler generated dependencies file for table11_browsers_apache.
# This may be replaced when dependencies are built.
