file(REMOVE_RECURSE
  "CMakeFiles/table12_modem_compression.dir/table12_modem_compression.cpp.o"
  "CMakeFiles/table12_modem_compression.dir/table12_modem_compression.cpp.o.d"
  "table12_modem_compression"
  "table12_modem_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_modem_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
