# Empty compiler generated dependencies file for table12_modem_compression.
# This may be replaced when dependencies are built.
