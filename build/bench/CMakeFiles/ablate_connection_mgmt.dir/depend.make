# Empty dependencies file for ablate_connection_mgmt.
# This may be replaced when dependencies are built.
