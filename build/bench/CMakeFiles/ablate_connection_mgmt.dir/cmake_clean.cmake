file(REMOVE_RECURSE
  "CMakeFiles/ablate_connection_mgmt.dir/ablate_connection_mgmt.cpp.o"
  "CMakeFiles/ablate_connection_mgmt.dir/ablate_connection_mgmt.cpp.o.d"
  "ablate_connection_mgmt"
  "ablate_connection_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_connection_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
