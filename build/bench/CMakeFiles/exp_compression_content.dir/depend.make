# Empty dependencies file for exp_compression_content.
# This may be replaced when dependencies are built.
