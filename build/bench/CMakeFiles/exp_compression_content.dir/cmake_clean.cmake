file(REMOVE_RECURSE
  "CMakeFiles/exp_compression_content.dir/exp_compression_content.cpp.o"
  "CMakeFiles/exp_compression_content.dir/exp_compression_content.cpp.o.d"
  "exp_compression_content"
  "exp_compression_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_compression_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
