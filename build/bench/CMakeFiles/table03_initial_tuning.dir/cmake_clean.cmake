file(REMOVE_RECURSE
  "CMakeFiles/table03_initial_tuning.dir/table03_initial_tuning.cpp.o"
  "CMakeFiles/table03_initial_tuning.dir/table03_initial_tuning.cpp.o.d"
  "table03_initial_tuning"
  "table03_initial_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_initial_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
