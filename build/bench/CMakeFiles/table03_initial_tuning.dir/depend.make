# Empty dependencies file for table03_initial_tuning.
# This may be replaced when dependencies are built.
