# Empty dependencies file for exp_time_to_render.
# This may be replaced when dependencies are built.
