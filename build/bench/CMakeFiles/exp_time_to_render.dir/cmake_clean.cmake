file(REMOVE_RECURSE
  "CMakeFiles/exp_time_to_render.dir/exp_time_to_render.cpp.o"
  "CMakeFiles/exp_time_to_render.dir/exp_time_to_render.cpp.o.d"
  "exp_time_to_render"
  "exp_time_to_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_time_to_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
