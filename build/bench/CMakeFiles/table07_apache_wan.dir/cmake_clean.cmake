file(REMOVE_RECURSE
  "CMakeFiles/table07_apache_wan.dir/table07_apache_wan.cpp.o"
  "CMakeFiles/table07_apache_wan.dir/table07_apache_wan.cpp.o.d"
  "table07_apache_wan"
  "table07_apache_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_apache_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
