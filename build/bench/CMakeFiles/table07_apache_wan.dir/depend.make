# Empty dependencies file for table07_apache_wan.
# This may be replaced when dependencies are built.
