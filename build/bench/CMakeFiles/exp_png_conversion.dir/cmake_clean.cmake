file(REMOVE_RECURSE
  "CMakeFiles/exp_png_conversion.dir/exp_png_conversion.cpp.o"
  "CMakeFiles/exp_png_conversion.dir/exp_png_conversion.cpp.o.d"
  "exp_png_conversion"
  "exp_png_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_png_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
