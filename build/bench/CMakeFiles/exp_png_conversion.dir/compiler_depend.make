# Empty compiler generated dependencies file for exp_png_conversion.
# This may be replaced when dependencies are built.
