file(REMOVE_RECURSE
  "CMakeFiles/ablate_slowstart.dir/ablate_slowstart.cpp.o"
  "CMakeFiles/ablate_slowstart.dir/ablate_slowstart.cpp.o.d"
  "ablate_slowstart"
  "ablate_slowstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_slowstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
