# Empty compiler generated dependencies file for ablate_slowstart.
# This may be replaced when dependencies are built.
