file(REMOVE_RECURSE
  "CMakeFiles/table10_browsers_jigsaw.dir/table10_browsers_jigsaw.cpp.o"
  "CMakeFiles/table10_browsers_jigsaw.dir/table10_browsers_jigsaw.cpp.o.d"
  "table10_browsers_jigsaw"
  "table10_browsers_jigsaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_browsers_jigsaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
