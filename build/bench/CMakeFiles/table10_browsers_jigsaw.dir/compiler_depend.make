# Empty compiler generated dependencies file for table10_browsers_jigsaw.
# This may be replaced when dependencies are built.
