# Empty compiler generated dependencies file for table08_jigsaw_ppp.
# This may be replaced when dependencies are built.
