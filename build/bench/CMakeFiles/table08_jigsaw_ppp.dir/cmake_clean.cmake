file(REMOVE_RECURSE
  "CMakeFiles/table08_jigsaw_ppp.dir/table08_jigsaw_ppp.cpp.o"
  "CMakeFiles/table08_jigsaw_ppp.dir/table08_jigsaw_ppp.cpp.o.d"
  "table08_jigsaw_ppp"
  "table08_jigsaw_ppp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_jigsaw_ppp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
