# Empty compiler generated dependencies file for ablate_nagle.
# This may be replaced when dependencies are built.
