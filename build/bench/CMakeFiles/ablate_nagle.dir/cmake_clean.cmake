file(REMOVE_RECURSE
  "CMakeFiles/ablate_nagle.dir/ablate_nagle.cpp.o"
  "CMakeFiles/ablate_nagle.dir/ablate_nagle.cpp.o.d"
  "ablate_nagle"
  "ablate_nagle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_nagle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
