file(REMOVE_RECURSE
  "CMakeFiles/exp_range_validation.dir/exp_range_validation.cpp.o"
  "CMakeFiles/exp_range_validation.dir/exp_range_validation.cpp.o.d"
  "exp_range_validation"
  "exp_range_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_range_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
