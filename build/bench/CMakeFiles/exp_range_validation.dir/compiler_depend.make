# Empty compiler generated dependencies file for exp_range_validation.
# This may be replaced when dependencies are built.
