# Empty dependencies file for table09_apache_ppp.
# This may be replaced when dependencies are built.
