file(REMOVE_RECURSE
  "CMakeFiles/table09_apache_ppp.dir/table09_apache_ppp.cpp.o"
  "CMakeFiles/table09_apache_ppp.dir/table09_apache_ppp.cpp.o.d"
  "table09_apache_ppp"
  "table09_apache_ppp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_apache_ppp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
