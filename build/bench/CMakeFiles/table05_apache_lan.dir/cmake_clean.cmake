file(REMOVE_RECURSE
  "CMakeFiles/table05_apache_lan.dir/table05_apache_lan.cpp.o"
  "CMakeFiles/table05_apache_lan.dir/table05_apache_lan.cpp.o.d"
  "table05_apache_lan"
  "table05_apache_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_apache_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
