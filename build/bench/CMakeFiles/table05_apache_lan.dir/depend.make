# Empty dependencies file for table05_apache_lan.
# This may be replaced when dependencies are built.
