file(REMOVE_RECURSE
  "libhsim_client.a"
)
