# Empty compiler generated dependencies file for hsim_client.
# This may be replaced when dependencies are built.
