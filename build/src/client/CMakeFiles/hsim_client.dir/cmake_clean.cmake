file(REMOVE_RECURSE
  "CMakeFiles/hsim_client.dir/profile.cpp.o"
  "CMakeFiles/hsim_client.dir/profile.cpp.o.d"
  "CMakeFiles/hsim_client.dir/robot.cpp.o"
  "CMakeFiles/hsim_client.dir/robot.cpp.o.d"
  "libhsim_client.a"
  "libhsim_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
