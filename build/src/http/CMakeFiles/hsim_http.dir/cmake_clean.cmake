file(REMOVE_RECURSE
  "CMakeFiles/hsim_http.dir/chunked.cpp.o"
  "CMakeFiles/hsim_http.dir/chunked.cpp.o.d"
  "CMakeFiles/hsim_http.dir/date.cpp.o"
  "CMakeFiles/hsim_http.dir/date.cpp.o.d"
  "CMakeFiles/hsim_http.dir/message.cpp.o"
  "CMakeFiles/hsim_http.dir/message.cpp.o.d"
  "CMakeFiles/hsim_http.dir/parser.cpp.o"
  "CMakeFiles/hsim_http.dir/parser.cpp.o.d"
  "libhsim_http.a"
  "libhsim_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
