# Empty compiler generated dependencies file for hsim_http.
# This may be replaced when dependencies are built.
