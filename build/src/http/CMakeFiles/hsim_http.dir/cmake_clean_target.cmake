file(REMOVE_RECURSE
  "libhsim_http.a"
)
