file(REMOVE_RECURSE
  "CMakeFiles/hsim_net.dir/link.cpp.o"
  "CMakeFiles/hsim_net.dir/link.cpp.o.d"
  "CMakeFiles/hsim_net.dir/trace.cpp.o"
  "CMakeFiles/hsim_net.dir/trace.cpp.o.d"
  "libhsim_net.a"
  "libhsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
