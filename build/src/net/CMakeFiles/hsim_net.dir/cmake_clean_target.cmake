file(REMOVE_RECURSE
  "libhsim_net.a"
)
