# Empty dependencies file for hsim_net.
# This may be replaced when dependencies are built.
