# Empty dependencies file for hsim_modem.
# This may be replaced when dependencies are built.
