file(REMOVE_RECURSE
  "libhsim_modem.a"
)
