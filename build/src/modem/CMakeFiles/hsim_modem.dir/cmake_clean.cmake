file(REMOVE_RECURSE
  "CMakeFiles/hsim_modem.dir/v42bis.cpp.o"
  "CMakeFiles/hsim_modem.dir/v42bis.cpp.o.d"
  "libhsim_modem.a"
  "libhsim_modem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_modem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
