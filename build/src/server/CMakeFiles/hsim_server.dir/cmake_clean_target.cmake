file(REMOVE_RECURSE
  "libhsim_server.a"
)
