# Empty dependencies file for hsim_server.
# This may be replaced when dependencies are built.
