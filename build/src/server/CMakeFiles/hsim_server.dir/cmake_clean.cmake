file(REMOVE_RECURSE
  "CMakeFiles/hsim_server.dir/server.cpp.o"
  "CMakeFiles/hsim_server.dir/server.cpp.o.d"
  "CMakeFiles/hsim_server.dir/static_site.cpp.o"
  "CMakeFiles/hsim_server.dir/static_site.cpp.o.d"
  "libhsim_server.a"
  "libhsim_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
