# Empty compiler generated dependencies file for hsim_server.
# This may be replaced when dependencies are built.
