file(REMOVE_RECURSE
  "libhsim_proxy.a"
)
