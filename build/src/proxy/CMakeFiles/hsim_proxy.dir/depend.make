# Empty dependencies file for hsim_proxy.
# This may be replaced when dependencies are built.
