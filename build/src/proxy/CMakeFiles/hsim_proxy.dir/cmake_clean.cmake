file(REMOVE_RECURSE
  "CMakeFiles/hsim_proxy.dir/proxy.cpp.o"
  "CMakeFiles/hsim_proxy.dir/proxy.cpp.o.d"
  "libhsim_proxy.a"
  "libhsim_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
