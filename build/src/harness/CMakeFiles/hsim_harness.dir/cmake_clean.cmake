file(REMOVE_RECURSE
  "CMakeFiles/hsim_harness.dir/experiment.cpp.o"
  "CMakeFiles/hsim_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/hsim_harness.dir/table.cpp.o"
  "CMakeFiles/hsim_harness.dir/table.cpp.o.d"
  "libhsim_harness.a"
  "libhsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
