file(REMOVE_RECURSE
  "libhsim_harness.a"
)
