# Empty compiler generated dependencies file for hsim_harness.
# This may be replaced when dependencies are built.
