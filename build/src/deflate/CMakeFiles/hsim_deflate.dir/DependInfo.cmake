
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deflate/checksum.cpp" "src/deflate/CMakeFiles/hsim_deflate.dir/checksum.cpp.o" "gcc" "src/deflate/CMakeFiles/hsim_deflate.dir/checksum.cpp.o.d"
  "/root/repo/src/deflate/deflate.cpp" "src/deflate/CMakeFiles/hsim_deflate.dir/deflate.cpp.o" "gcc" "src/deflate/CMakeFiles/hsim_deflate.dir/deflate.cpp.o.d"
  "/root/repo/src/deflate/huffman.cpp" "src/deflate/CMakeFiles/hsim_deflate.dir/huffman.cpp.o" "gcc" "src/deflate/CMakeFiles/hsim_deflate.dir/huffman.cpp.o.d"
  "/root/repo/src/deflate/inflate.cpp" "src/deflate/CMakeFiles/hsim_deflate.dir/inflate.cpp.o" "gcc" "src/deflate/CMakeFiles/hsim_deflate.dir/inflate.cpp.o.d"
  "/root/repo/src/deflate/tables.cpp" "src/deflate/CMakeFiles/hsim_deflate.dir/tables.cpp.o" "gcc" "src/deflate/CMakeFiles/hsim_deflate.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
