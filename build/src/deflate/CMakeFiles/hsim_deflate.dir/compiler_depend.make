# Empty compiler generated dependencies file for hsim_deflate.
# This may be replaced when dependencies are built.
