file(REMOVE_RECURSE
  "CMakeFiles/hsim_deflate.dir/checksum.cpp.o"
  "CMakeFiles/hsim_deflate.dir/checksum.cpp.o.d"
  "CMakeFiles/hsim_deflate.dir/deflate.cpp.o"
  "CMakeFiles/hsim_deflate.dir/deflate.cpp.o.d"
  "CMakeFiles/hsim_deflate.dir/huffman.cpp.o"
  "CMakeFiles/hsim_deflate.dir/huffman.cpp.o.d"
  "CMakeFiles/hsim_deflate.dir/inflate.cpp.o"
  "CMakeFiles/hsim_deflate.dir/inflate.cpp.o.d"
  "CMakeFiles/hsim_deflate.dir/tables.cpp.o"
  "CMakeFiles/hsim_deflate.dir/tables.cpp.o.d"
  "libhsim_deflate.a"
  "libhsim_deflate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
