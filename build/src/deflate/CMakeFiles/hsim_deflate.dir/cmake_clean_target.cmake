file(REMOVE_RECURSE
  "libhsim_deflate.a"
)
