
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/content/css.cpp" "src/content/CMakeFiles/hsim_content.dir/css.cpp.o" "gcc" "src/content/CMakeFiles/hsim_content.dir/css.cpp.o.d"
  "/root/repo/src/content/gif.cpp" "src/content/CMakeFiles/hsim_content.dir/gif.cpp.o" "gcc" "src/content/CMakeFiles/hsim_content.dir/gif.cpp.o.d"
  "/root/repo/src/content/image.cpp" "src/content/CMakeFiles/hsim_content.dir/image.cpp.o" "gcc" "src/content/CMakeFiles/hsim_content.dir/image.cpp.o.d"
  "/root/repo/src/content/microscape.cpp" "src/content/CMakeFiles/hsim_content.dir/microscape.cpp.o" "gcc" "src/content/CMakeFiles/hsim_content.dir/microscape.cpp.o.d"
  "/root/repo/src/content/mng.cpp" "src/content/CMakeFiles/hsim_content.dir/mng.cpp.o" "gcc" "src/content/CMakeFiles/hsim_content.dir/mng.cpp.o.d"
  "/root/repo/src/content/png.cpp" "src/content/CMakeFiles/hsim_content.dir/png.cpp.o" "gcc" "src/content/CMakeFiles/hsim_content.dir/png.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/deflate/CMakeFiles/hsim_deflate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
