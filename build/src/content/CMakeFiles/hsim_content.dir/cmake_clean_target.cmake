file(REMOVE_RECURSE
  "libhsim_content.a"
)
