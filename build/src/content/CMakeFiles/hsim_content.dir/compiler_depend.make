# Empty compiler generated dependencies file for hsim_content.
# This may be replaced when dependencies are built.
