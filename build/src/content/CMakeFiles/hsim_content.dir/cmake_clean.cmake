file(REMOVE_RECURSE
  "CMakeFiles/hsim_content.dir/css.cpp.o"
  "CMakeFiles/hsim_content.dir/css.cpp.o.d"
  "CMakeFiles/hsim_content.dir/gif.cpp.o"
  "CMakeFiles/hsim_content.dir/gif.cpp.o.d"
  "CMakeFiles/hsim_content.dir/image.cpp.o"
  "CMakeFiles/hsim_content.dir/image.cpp.o.d"
  "CMakeFiles/hsim_content.dir/microscape.cpp.o"
  "CMakeFiles/hsim_content.dir/microscape.cpp.o.d"
  "CMakeFiles/hsim_content.dir/mng.cpp.o"
  "CMakeFiles/hsim_content.dir/mng.cpp.o.d"
  "CMakeFiles/hsim_content.dir/png.cpp.o"
  "CMakeFiles/hsim_content.dir/png.cpp.o.d"
  "libhsim_content.a"
  "libhsim_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
