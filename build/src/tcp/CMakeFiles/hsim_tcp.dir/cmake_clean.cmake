file(REMOVE_RECURSE
  "CMakeFiles/hsim_tcp.dir/connection.cpp.o"
  "CMakeFiles/hsim_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/hsim_tcp.dir/host.cpp.o"
  "CMakeFiles/hsim_tcp.dir/host.cpp.o.d"
  "libhsim_tcp.a"
  "libhsim_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
