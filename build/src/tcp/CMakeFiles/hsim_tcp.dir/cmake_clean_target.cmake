file(REMOVE_RECURSE
  "libhsim_tcp.a"
)
