# Empty dependencies file for hsim_tcp.
# This may be replaced when dependencies are built.
