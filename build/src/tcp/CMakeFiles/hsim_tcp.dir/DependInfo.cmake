
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/connection.cpp" "src/tcp/CMakeFiles/hsim_tcp.dir/connection.cpp.o" "gcc" "src/tcp/CMakeFiles/hsim_tcp.dir/connection.cpp.o.d"
  "/root/repo/src/tcp/host.cpp" "src/tcp/CMakeFiles/hsim_tcp.dir/host.cpp.o" "gcc" "src/tcp/CMakeFiles/hsim_tcp.dir/host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hsim_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
