file(REMOVE_RECURSE
  "CMakeFiles/hsim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hsim_sim.dir/event_queue.cpp.o.d"
  "libhsim_sim.a"
  "libhsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
