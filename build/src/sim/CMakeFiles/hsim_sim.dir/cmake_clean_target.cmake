file(REMOVE_RECURSE
  "libhsim_sim.a"
)
