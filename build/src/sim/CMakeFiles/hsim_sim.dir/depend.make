# Empty dependencies file for hsim_sim.
# This may be replaced when dependencies are built.
