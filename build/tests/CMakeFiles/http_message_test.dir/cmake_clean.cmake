file(REMOVE_RECURSE
  "CMakeFiles/http_message_test.dir/http_message_test.cpp.o"
  "CMakeFiles/http_message_test.dir/http_message_test.cpp.o.d"
  "http_message_test"
  "http_message_test.pdb"
  "http_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
