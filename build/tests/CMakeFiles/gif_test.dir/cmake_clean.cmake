file(REMOVE_RECURSE
  "CMakeFiles/gif_test.dir/gif_test.cpp.o"
  "CMakeFiles/gif_test.dir/gif_test.cpp.o.d"
  "gif_test"
  "gif_test.pdb"
  "gif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
