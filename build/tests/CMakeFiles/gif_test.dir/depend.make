# Empty dependencies file for gif_test.
# This may be replaced when dependencies are built.
