file(REMOVE_RECURSE
  "CMakeFiles/range_validation_test.dir/range_validation_test.cpp.o"
  "CMakeFiles/range_validation_test.dir/range_validation_test.cpp.o.d"
  "range_validation_test"
  "range_validation_test.pdb"
  "range_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
