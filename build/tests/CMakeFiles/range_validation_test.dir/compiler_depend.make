# Empty compiler generated dependencies file for range_validation_test.
# This may be replaced when dependencies are built.
