
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/range_validation_test.cpp" "tests/CMakeFiles/range_validation_test.dir/range_validation_test.cpp.o" "gcc" "tests/CMakeFiles/range_validation_test.dir/range_validation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/hsim_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/hsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/hsim_http.dir/DependInfo.cmake"
  "/root/repo/build/src/content/CMakeFiles/hsim_content.dir/DependInfo.cmake"
  "/root/repo/build/src/deflate/CMakeFiles/hsim_deflate.dir/DependInfo.cmake"
  "/root/repo/build/src/modem/CMakeFiles/hsim_modem.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/hsim_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
