file(REMOVE_RECURSE
  "CMakeFiles/tcp_handshake_test.dir/tcp_handshake_test.cpp.o"
  "CMakeFiles/tcp_handshake_test.dir/tcp_handshake_test.cpp.o.d"
  "tcp_handshake_test"
  "tcp_handshake_test.pdb"
  "tcp_handshake_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_handshake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
