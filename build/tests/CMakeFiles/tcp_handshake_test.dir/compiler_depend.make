# Empty compiler generated dependencies file for tcp_handshake_test.
# This may be replaced when dependencies are built.
