file(REMOVE_RECURSE
  "CMakeFiles/http_property_test.dir/http_property_test.cpp.o"
  "CMakeFiles/http_property_test.dir/http_property_test.cpp.o.d"
  "http_property_test"
  "http_property_test.pdb"
  "http_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
