file(REMOVE_RECURSE
  "CMakeFiles/caching_proxy_test.dir/caching_proxy_test.cpp.o"
  "CMakeFiles/caching_proxy_test.dir/caching_proxy_test.cpp.o.d"
  "caching_proxy_test"
  "caching_proxy_test.pdb"
  "caching_proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caching_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
