# Empty compiler generated dependencies file for caching_proxy_test.
# This may be replaced when dependencies are built.
