file(REMOVE_RECURSE
  "CMakeFiles/tcp_transfer_test.dir/tcp_transfer_test.cpp.o"
  "CMakeFiles/tcp_transfer_test.dir/tcp_transfer_test.cpp.o.d"
  "tcp_transfer_test"
  "tcp_transfer_test.pdb"
  "tcp_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
