# Empty dependencies file for modem_test.
# This may be replaced when dependencies are built.
