file(REMOVE_RECURSE
  "CMakeFiles/modem_test.dir/modem_test.cpp.o"
  "CMakeFiles/modem_test.dir/modem_test.cpp.o.d"
  "modem_test"
  "modem_test.pdb"
  "modem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
