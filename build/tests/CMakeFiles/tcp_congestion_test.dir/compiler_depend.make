# Empty compiler generated dependencies file for tcp_congestion_test.
# This may be replaced when dependencies are built.
