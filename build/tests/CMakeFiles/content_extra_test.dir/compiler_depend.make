# Empty compiler generated dependencies file for content_extra_test.
# This may be replaced when dependencies are built.
