file(REMOVE_RECURSE
  "CMakeFiles/content_extra_test.dir/content_extra_test.cpp.o"
  "CMakeFiles/content_extra_test.dir/content_extra_test.cpp.o.d"
  "content_extra_test"
  "content_extra_test.pdb"
  "content_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
