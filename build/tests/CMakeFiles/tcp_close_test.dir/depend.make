# Empty dependencies file for tcp_close_test.
# This may be replaced when dependencies are built.
