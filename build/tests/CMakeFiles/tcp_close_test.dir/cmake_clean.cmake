file(REMOVE_RECURSE
  "CMakeFiles/tcp_close_test.dir/tcp_close_test.cpp.o"
  "CMakeFiles/tcp_close_test.dir/tcp_close_test.cpp.o.d"
  "tcp_close_test"
  "tcp_close_test.pdb"
  "tcp_close_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_close_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
