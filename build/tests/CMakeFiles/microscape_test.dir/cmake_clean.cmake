file(REMOVE_RECURSE
  "CMakeFiles/microscape_test.dir/microscape_test.cpp.o"
  "CMakeFiles/microscape_test.dir/microscape_test.cpp.o.d"
  "microscape_test"
  "microscape_test.pdb"
  "microscape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
