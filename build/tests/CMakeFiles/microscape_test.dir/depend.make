# Empty dependencies file for microscape_test.
# This may be replaced when dependencies are built.
